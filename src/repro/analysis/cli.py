"""Lint driver shared by ``repro-em lint`` and ``python -m repro.analysis``.

Exit codes follow the usual linter protocol: 0 for a clean run, 1 when
there are new (non-baselined) findings, and 2 for usage/target errors —
a nonexistent path, or a target containing no Python files at all.
"""

from __future__ import annotations

import argparse
import hashlib
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.cache import DEFAULT_CACHE_DIR, AnalysisCache
from repro.analysis.core import (
    FileRule,
    Project,
    _common_root,
    all_rules,
    analyze,
)
from repro.analysis.graph import CONTRACT_FILENAME
from repro.analysis.reporter import render_json, render_text

__all__ = ["add_lint_arguments", "analysis_salt", "run_lint", "main"]

#: Default baseline filename, resolved against the current directory.
DEFAULT_BASELINE = "lint_baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with repro-em)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined (grandfathered) findings",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for files changed per git (plus "
        "inter-procedural findings in their reverse-dependency closure); "
        "falls back to a full run outside a git repository",
    )
    parser.add_argument(
        "--graph",
        choices=("json", "dot"),
        default=None,
        help="dump the import graph in this format instead of linting",
    )
    parser.add_argument(
        "--hotspots",
        action="store_true",
        help="rank reached functions by multiplicity x effect weight "
        "instead of linting (honours --format and --top)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        help="number of hotspots to show (0 = all; default: 15)",
    )
    parser.add_argument(
        "--graph-level",
        choices=("module", "package"),
        default="module",
        help="granularity of --graph output (default: module)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk analysis cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"analysis cache directory (default: {DEFAULT_CACHE_DIR})",
    )


_SALT_MEMO: dict[Path, str] = {}


def analysis_salt(root: Path | None = None) -> str:
    """Content digest of the analyzer itself plus the layering contract.

    The analysis cache keys entries by each analyzed file's mtime and
    size, which cannot see changes to the *rules*: editing a rule, the
    engine, or the contract the rules read would otherwise silently
    replay stale findings. This digest — over every ``repro.analysis``
    source file and the ``docs/ARCHITECTURE_CONTRACT`` found at or above
    ``root`` — is passed as the :class:`~repro.analysis.cache.AnalysisCache`
    salt, so any analyzer or policy change invalidates the whole cache
    at once.
    """
    key = (root or Path.cwd()).resolve()
    cached = _SALT_MEMO.get(key)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    for base in (key, *key.parents):
        candidate = base / "docs" / CONTRACT_FILENAME
        if candidate.is_file():
            digest.update(candidate.read_bytes())
            break
    salt = digest.hexdigest()
    _SALT_MEMO[key] = salt
    return salt


def _selected_rules(select: str | None):
    rules = all_rules()
    if select is None:
        return rules
    wanted = {r.strip().upper() for r in select.split(",") if r.strip()}
    known = {rule.id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(rule for rule in rules if rule.id in wanted)


def _git_changed_files() -> list[Path] | None:
    """Changed + untracked ``.py`` files per git, or None outside a repo.

    Paths come back repo-root-relative from git; they are re-rooted and,
    when possible, made relative to the current directory so that
    finding paths (and therefore baseline fingerprints) match a plain
    full run launched from the same place.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if top.returncode != 0:
        return None
    repo_root = Path(top.stdout.strip())
    names: set[str] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            command, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            return None  # e.g. a repo with no commits yet — run full
        names.update(proc.stdout.splitlines())
    files = []
    cwd = Path.cwd()
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = repo_root / name
        if not path.exists():
            continue  # deleted in the working tree
        try:
            files.append(path.relative_to(cwd))
        except ValueError:
            files.append(path)
    return files


def _scope_to_paths(files: list[Path], requested: list[Path]) -> list[Path]:
    """The subset of ``files`` lying under any of the requested paths."""
    anchors = [p.resolve() for p in requested]
    scoped = []
    for path in files:
        resolved = path.resolve()
        for anchor in anchors:
            if resolved == anchor or (
                anchor.is_dir() and resolved.is_relative_to(anchor)
            ):
                scoped.append(path)
                break
    return scoped


def _changed_scopes(
    project: Project, changed: list[Path]
) -> tuple[set[str], set[str]]:
    """(changed rel paths, reverse-dependency-closure rel paths).

    The closure walks the import graph backwards from the changed
    modules: an inter-procedural finding can be anchored in an unchanged
    caller when one of its (transitive) callees changed, so project-rule
    findings are kept for every module that can reach a changed one.
    """
    resolved = {p.resolve() for p in changed}
    changed_rel: set[str] = set()
    changed_modules: set[str] = set()
    for module in project.modules:
        if module.path.resolve() in resolved:
            changed_rel.add(module.rel_path)
            changed_modules.add(module.module_name)
    importers: dict[str, set[str]] = {}
    for edge in project.import_graph().edges:
        if edge.internal:
            importers.setdefault(edge.target, set()).add(edge.source)
    closure = set(changed_modules)
    queue = list(changed_modules)
    while queue:
        for parent in importers.get(queue.pop(), ()):
            if parent not in closure:
                closure.add(parent)
                queue.append(parent)
    rel_by_name = {m.module_name: m.rel_path for m in project.modules}
    closure_rel = {rel_by_name[n] for n in closure if n in rel_by_name}
    return changed_rel, closure_rel


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity.value:7s}] {rule.name}: "
                  f"{rule.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return 2

    rules = _selected_rules(args.select)
    requested = [Path(p) for p in args.paths]
    root = _common_root(requested)
    cache = (
        None
        if args.no_cache
        else AnalysisCache(args.cache_dir, salt=analysis_salt(root))
    )

    changed_slice: list[Path] | None = None
    if args.changed:
        if args.update_baseline:
            print(
                "error: --changed cannot update the baseline (it sees only "
                "a slice of the project)",
                file=sys.stderr,
            )
            return 2
        changed = _git_changed_files()
        if changed is not None:
            changed_slice = _scope_to_paths(changed, requested)
            if not changed_slice:
                print("no changed python files under the requested paths")
                return 0

    # --changed still loads the whole project: the inter-procedural
    # rules need every import/call edge (an unchanged caller can gain a
    # finding when its callee changed), and the cache serves unchanged
    # modules so the load stays cheap. Findings are filtered afterwards.
    project = Project.load(requested, root=root, cache=cache)

    if not project.modules and not project.parse_failures:
        print(
            "error: no python files found under: "
            f"{', '.join(str(p) for p in args.paths)}",
            file=sys.stderr,
        )
        return 2

    if args.graph is not None:
        graph = project.import_graph()
        if args.graph == "dot":
            sys.stdout.write(graph.to_dot(args.graph_level))
        else:
            print(graph.to_json(args.graph_level))
        project.save_cache()  # the graph build warms the cache too
        return 0

    if args.hotspots:
        from repro.analysis.cost import cost_analysis
        from repro.analysis.reporter import (
            render_hotspots_json,
            render_hotspots_text,
        )

        cost = cost_analysis(project)
        ranked = cost.hotspots()
        top = max(0, args.top)
        shown = ranked[:top] if top else ranked
        if args.format == "json":
            print(render_hotspots_json(shown, total=len(ranked)))
        else:
            print(render_hotspots_text(shown, total=len(ranked)))
        project.save_cache()  # the cost fixpoint warms the cache too
        return 0

    findings = analyze(project, rules)
    if changed_slice is not None:
        changed_rel, closure_rel = _changed_scopes(project, changed_slice)
        file_rule_ids = {r.id for r in rules if isinstance(r, FileRule)}
        findings = [
            f
            for f in findings
            if (f.path in changed_rel)
            or (f.rule not in file_rule_ids and f.path in closure_rel)
        ]

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(findings).save(target)
        print(f"baseline updated: {target} ({len(findings)} finding(s))")
        return 0

    try:
        baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    except ValueError as exc:
        raise SystemExit(f"invalid baseline file {baseline_path}: {exc}")
    result = apply_baseline(findings, baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 1 if result.new else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="EM-repro static analysis: AST lint rules for RNG "
        "discipline, estimator API conformance, search-space "
        "cross-validation, export hygiene, plus whole-program "
        "layering, RNG-flow, and dead-symbol checks",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
