"""Lint driver shared by ``repro-em lint`` and ``python -m repro.analysis``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.core import all_rules, analyze_project
from repro.analysis.reporter import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]

#: Default baseline filename, resolved against the current directory.
DEFAULT_BASELINE = "lint_baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with repro-em)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined (grandfathered) findings",
    )


def _selected_rules(select: str | None):
    rules = all_rules()
    if select is None:
        return rules
    wanted = {r.strip().upper() for r in select.split(",") if r.strip()}
    known = {rule.id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(rule for rule in rules if rule.id in wanted)


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity.value:7s}] {rule.name}: "
                  f"{rule.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"no such path(s): {', '.join(missing)}")

    rules = _selected_rules(args.select)
    findings = analyze_project(args.paths, rules=rules)

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(findings).save(target)
        print(f"baseline updated: {target} ({len(findings)} finding(s))")
        return 0

    try:
        baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    except ValueError as exc:
        raise SystemExit(f"invalid baseline file {baseline_path}: {exc}")
    result = apply_baseline(findings, baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 1 if result.new else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="EM-repro static analysis: AST lint rules for RNG "
        "discipline, estimator API conformance, search-space "
        "cross-validation, and export hygiene",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
