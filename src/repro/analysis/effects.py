"""Inter-procedural effect propagation: the dataflow layer.

Every function summary carries its *direct* effect sites — calls into
the ambient world that :func:`repro.analysis.graph.summarize_module`
classified against the effect lattice (:data:`~repro.analysis.graph.EFFECT_TAGS`):

========  =====================================================
tag       meaning
========  =====================================================
clock     wall-clock reads (``time.*``, ``datetime.now``)
env       ``os.environ`` / ``os.getenv`` reads
random    ambient randomness (``random``, unseeded ``default_rng``)
order     unordered iteration (``listdir``/``glob``/``iterdir``/sets)
io        raw file I/O (``open``, ``os.replace``, ``np.save``, ...)
process   process control (``sys.exit``, ``os.fork``, ...)
========  =====================================================

"pure" is the empty tag set. This module closes the direct sets over
the static call graph with a reverse-topological worklist fixpoint: a
caller transitively exhibits every effect of every resolvable callee.
Tags only accumulate, the lattice is finite, so the fixpoint terminates
in at most ``|functions| * |tags|`` relaxations.

The engine is deliberately separate from the rules that consume it
(DET0xx, SEAM0xx, FORK0xx): the rules decide *policy* — which modules
form the deterministic core, who is exempt — while this module only
answers *mechanism* questions: what can this function do, which modules
can the core reach, and along which chain.

Dynamic dispatch (callbacks, ``getattr``, subclass overrides) is
invisible to :class:`~repro.analysis.graph.CallResolver`, so the call
graph under-approximates reachability. Module *reachability* therefore
runs on the import graph instead — including lazy (function-scoped)
imports, which still execute — and the call-chain renderer falls back
to the import chain when no static call path exists.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.graph import (
    CallGraph,
    ContractError,
    EFFECT_TAGS,
    ImportGraph,
    LayeringContract,
    ModuleSummary,
)

__all__ = [
    "DEFAULT_CORE_PACKAGES",
    "DEFAULT_DET_EXEMPT",
    "EffectAnalysis",
    "EffectSite",
    "effect_analysis",
    "matches_prefix",
    "project_contract",
]

#: Packages forming the deterministic core: anything they can reach must
#: stay free of ambient clock/env/random/order effects. Overridable via
#: the ``core determinism:`` contract directive.
DEFAULT_CORE_PACKAGES = (
    "repro.experiments",
    "repro.parallel",
    "repro.adapter",
    "repro.automl",
    "repro.nn",
)

#: Packages exempt from determinism taint by construction: telemetry and
#: faults own the sanctioned timers, config owns the env knobs and seed
#: fan-out, the CLI/analysis layer is not inside any measured run, and
#: the chaos harness mutates env/clock state deliberately. Overridable
#: via the ``exempt determinism:`` contract directive.
DEFAULT_DET_EXEMPT = (
    "repro.telemetry",
    "repro.faults",
    "repro.config",
    "repro.cli",
    "repro.analysis",
    "repro.parallel.chaos",
    "repro.experiments.config",
)


def matches_prefix(module: str, prefixes: Sequence[str]) -> bool:
    """True when ``module`` is one of ``prefixes`` or nested under one."""
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


def effect_analysis(project) -> "EffectAnalysis":
    """The project's :class:`EffectAnalysis`, built once and shared.

    Four DET rules plus the SEAM/FORK packs all consume the same
    fixpoint; memoizing on the project keeps the call-graph build from
    running once per rule.
    """
    cached = getattr(project, "_effect_analysis", None)
    if cached is None:
        cached = EffectAnalysis(project.summaries)
        project._effect_analysis = cached
    return cached


_CONTRACT_UNSET = object()


def project_contract(project) -> LayeringContract | None:
    """The project's layering contract, or None when absent/unparseable.

    A broken contract file is ARC001's finding to report; the effect
    rules silently fall back to their built-in defaults rather than
    duplicating it.
    """
    cached = getattr(project, "_effects_contract", _CONTRACT_UNSET)
    if cached is _CONTRACT_UNSET:
        try:
            cached = LayeringContract.find(project.root)
        except ContractError:
            cached = None
        project._effects_contract = cached
    return cached


@dataclass(frozen=True)
class EffectSite:
    """One direct effect occurrence at a concrete source location."""

    module: str
    function: str  #: qualname within the module; "" for module level
    tag: str
    lineno: int
    col: int
    detail: str  #: the classified callable, e.g. ``time.perf_counter``

    @property
    def owner(self) -> str:
        if not self.function:
            return f"{self.module} (module level)"
        return f"{self.module}.{self.function}"


class EffectAnalysis:
    """Fixpoint effect summaries plus the chains that explain them.

    Keys are ``(module, qualname)`` function identities; the pseudo
    qualname ``""`` holds a module's import-time (top-level) effects.
    """

    def __init__(self, summaries: Mapping[str, ModuleSummary]):
        self.summaries = summaries
        self.call_graph = CallGraph.build(summaries)
        self._direct: dict[tuple[str, str], tuple[EffectSite, ...]] = {}
        for module in sorted(summaries):
            summary = summaries[module]
            if summary.module_effects:
                self._direct[(module, "")] = tuple(
                    EffectSite(module, "", tag, line, col, detail)
                    for tag, line, col, detail in summary.module_effects
                )
            for qualname in sorted(summary.functions):
                info = summary.functions[qualname]
                if info.effects:
                    self._direct[(module, qualname)] = tuple(
                        EffectSite(module, qualname, tag, line, col, detail)
                        for tag, line, col, detail in info.effects
                    )
        self._transitive = self._fixpoint()

    # ------------------------------------------------------------ fixpoint

    def _fixpoint(self) -> dict[tuple[str, str], frozenset[str]]:
        """Propagate callee tags to callers until nothing changes."""
        tags: dict[tuple[str, str], set[str]] = {
            key: {site.tag for site in sites}
            for key, sites in self._direct.items()
        }
        callers: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for caller, callees in self.call_graph.edges.items():
            for callee in callees:
                callers.setdefault(callee, []).append(caller)
        pending = deque(sorted(tags))
        while pending:
            key = pending.popleft()
            current = tags.get(key, set())
            for caller in callers.get(key, ()):
                known = tags.setdefault(caller, set())
                if not current <= known:
                    known |= current
                    pending.append(caller)
        return {key: frozenset(value) for key, value in tags.items()}

    # ------------------------------------------------------------- queries

    def direct_sites(self, module: str) -> Iterator[EffectSite]:
        """Direct effect sites in ``module``, module-level first."""
        summary = self.summaries.get(module)
        if summary is None:
            return
        for key in ((module, ""), *((module, q) for q in sorted(summary.functions))):
            yield from self._direct.get(key, ())

    def function_effects(self, module: str, qualname: str) -> frozenset[str]:
        """Transitive effect tags of one function ("" = module level)."""
        return self._transitive.get((module, qualname), frozenset())

    def effect_functions(self, tag: str) -> list[tuple[str, str]]:
        """Every function whose transitive effect set includes ``tag``."""
        if tag not in EFFECT_TAGS:
            raise ValueError(f"unknown effect tag {tag!r}")
        return sorted(
            key for key, tags in self._transitive.items() if tag in tags
        )

    # -------------------------------------------------------- reachability

    def reachable_from(
        self, import_graph: ImportGraph, prefixes: Sequence[str]
    ) -> dict[str, str | None]:
        """Modules the ``prefixes`` packages can reach, with BFS parents.

        Runs over *all* internal import edges, lazy ones included — a
        function-scoped import still executes on the measured path. The
        returned parent map feeds :meth:`import_chain`.
        """
        adjacency: dict[str, list[str]] = {}
        for edge in import_graph.internal_edges():
            adjacency.setdefault(edge.source, []).append(edge.target)
        parent: dict[str, str | None] = {
            module: None
            for module in sorted(import_graph.modules)
            if matches_prefix(module, prefixes)
        }
        queue = deque(sorted(parent))
        while queue:
            module = queue.popleft()
            for target in sorted(adjacency.get(module, ())):
                if target not in parent:
                    parent[target] = module
                    queue.append(target)
        return parent

    @staticmethod
    def import_chain(
        parent: Mapping[str, str | None], module: str
    ) -> list[str]:
        """The BFS import path from a core root down to ``module``."""
        chain = [module]
        seen = {module}
        while True:
            step = parent.get(chain[0])
            if step is None or step in seen:
                return chain
            chain.insert(0, step)
            seen.add(step)

    def call_chain(
        self,
        source_prefixes: Sequence[str],
        target: tuple[str, str],
        limit: int = 8,
    ) -> list[tuple[str, str]] | None:
        """A static call path from any core-package function to ``target``.

        Returns None when dynamic dispatch hides the path (the common
        case for callback-driven code); callers then fall back to
        :meth:`import_chain`.
        """
        back: dict[tuple[str, str], tuple[str, str] | None] = {}
        queue: deque[tuple[tuple[str, str], int]] = deque()
        for caller in sorted(self.call_graph.edges):
            if matches_prefix(caller[0], source_prefixes):
                back[caller] = None
                queue.append((caller, 0))
        while queue:
            node, depth = queue.popleft()
            if node == target:
                chain = [node]
                while back[chain[0]] is not None:
                    chain.insert(0, back[chain[0]])  # type: ignore[arg-type]
                return chain
            if depth >= limit:
                continue
            for callee in sorted(self.call_graph.edges.get(node, ())):
                if callee not in back:
                    back[callee] = node
                    queue.append((callee, depth + 1))
        return None
