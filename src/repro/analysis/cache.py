"""On-disk parse/summary/findings cache for the analysis engine.

The cache lives in one JSON file under ``.repro-analysis-cache/`` and is
keyed by the absolute path of each analyzed file, validated by
``(st_mtime_ns, st_size)``. A valid entry lets a warm run skip the
expensive work entirely: the parse (entries remember syntax errors), the
:class:`~repro.analysis.graph.ModuleSummary` extraction that feeds every
whole-program graph, and the per-rule findings of the file-scoped rules.
Modules are then only re-parsed on demand, for the few project rules
that genuinely need an AST.

Corruption is never fatal — an unreadable or version-mismatched cache
file degrades to a cold run. Writes are atomic (temp file + rename) so
an interrupted lint cannot leave a truncated cache behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro import faults, telemetry

__all__ = ["AnalysisCache", "DEFAULT_CACHE_DIR"]

#: Default cache directory, resolved against the current directory.
DEFAULT_CACHE_DIR = ".repro-analysis-cache"

#: Bump when the entry schema or any rule's semantics change; mismatched
#: versions are discarded wholesale rather than migrated.
#: 2: ModuleSummary grew effect/seam/fork extracts (effects, checkpoints,
#:    retry_wraps, caught, global_assigns, module_effects, globals_info).
#: 3: loop-nest extracts for the cost analysis (FunctionInfo.loops /
#:    loop_calls, CallSite.loops, the "method" callee shape).
CACHE_VERSION = 3

_CACHE_FILENAME = "analysis-cache.json"


class AnalysisCache:
    """Mtime+size-validated cache of parse results, summaries, findings.

    Entries are plain dicts::

        {"mtime_ns": ..., "size": ..., "rel_path": "src/repro/x.py",
         "parse_error": null | {"lineno", "offset", "msg"},
         "summary": null | ModuleSummary.to_dict(),
         "findings": {rule_id: [Finding.to_dict(), ...]}}

    ``rel_path`` participates in validation: the same file analyzed from
    a different root produces different finding paths, so such an entry
    must miss rather than replay stale fingerprints.

    ``salt`` guards against everything mtime+size cannot see: the rule
    pack itself. Cached findings are a function of (file content, rule
    semantics, contract), so callers pass a digest of the analyzer
    source and the architecture contract (see
    :func:`repro.analysis.cli.analysis_salt`); a stored cache written
    under a different salt is discarded wholesale, exactly like a
    version bump. ``salt=None`` keeps the legacy content-only behaviour
    for callers that manage invalidation themselves.
    """

    def __init__(
        self,
        directory: Path | str = DEFAULT_CACHE_DIR,
        salt: str | None = None,
    ):
        self.directory = Path(directory)
        self.path = self.directory / _CACHE_FILENAME
        self.salt = salt
        self._entries: dict[str, dict] | None = None
        self.dirty = False
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- loading

    def _load(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] = {}
        faults.checkpoint("analysis.cache.read", path=str(self.path))
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = None
        if (
            isinstance(payload, dict)
            and payload.get("version") == CACHE_VERSION
            and payload.get("salt") == self.salt
            and isinstance(payload.get("files"), dict)
        ):
            entries = payload["files"]
        else:
            # Unreadable, corrupt, or version-mismatched: the cold run
            # *is* the degraded path, and save() repairs the file.
            faults.mark_recovered("analysis.cache.read", path=str(self.path))
        self._entries = entries
        return entries

    @staticmethod
    def _stat_key(path: Path) -> tuple[int, int]:
        stat = path.stat()
        return stat.st_mtime_ns, stat.st_size

    def lookup(self, path: Path, rel_path: str) -> dict | None:
        """The entry for ``path`` if still valid, else None (a miss)."""
        entry = self._load().get(str(path.resolve()))
        if entry is not None:
            try:
                mtime_ns, size = self._stat_key(path)
            except OSError:
                entry = None
            else:
                if (
                    entry.get("mtime_ns") != mtime_ns
                    or entry.get("size") != size
                    or entry.get("rel_path") != rel_path
                ):
                    entry = None
        if entry is None:
            self.misses += 1
            telemetry.counter("analysis.cache.misses").inc()
            return None
        self.hits += 1
        telemetry.counter("analysis.cache.hits").inc()
        return entry

    # ------------------------------------------------------------- storing

    def store(
        self,
        path: Path,
        rel_path: str,
        parse_error: dict | None = None,
        summary: dict | None = None,
    ) -> dict | None:
        """Create a fresh entry for ``path``; returns it for mutation."""
        try:
            mtime_ns, size = self._stat_key(path)
        except OSError:
            return None
        entry = {
            "mtime_ns": mtime_ns,
            "size": size,
            "rel_path": rel_path,
            "parse_error": parse_error,
            "summary": summary,
            "findings": {},
        }
        self._load()[str(path.resolve())] = entry
        self.dirty = True
        return entry

    def record_findings(
        self, entry: dict, rule_id: str, findings: list[dict]
    ) -> None:
        """Attach one rule's (pre-suppression) findings to an entry."""
        entry.setdefault("findings", {})[rule_id] = findings
        self.dirty = True

    # -------------------------------------------------------------- saving

    def save(self) -> None:
        """Atomically persist the cache; a pure-hit run writes nothing."""
        if not self.dirty or self._entries is None:
            return
        live = {
            key: entry
            for key, entry in self._entries.items()
            if Path(key).exists()
        }
        payload = {"version": CACHE_VERSION, "salt": self.salt, "files": live}

        def _write() -> None:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    faults.checkpoint(
                        "analysis.cache.store.write", path=str(self.path)
                    )
                    json.dump(payload, stream, sort_keys=True)
                faults.checkpoint(
                    "analysis.cache.store.replace", path=str(self.path)
                )
                os.replace(tmp_name, self.path)
            finally:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)

        try:
            faults.io_retry(_write, "analysis.cache.store")
        except OSError:
            return  # caching is best-effort; never fail the lint run
        self.dirty = False
