"""Global configuration: seeds, scale factors, and experiment defaults.

Every stochastic component in the library draws its randomness from an
explicit :class:`numpy.random.Generator` seeded through :func:`rng_for`, so
the whole reproduction is deterministic end to end. The experiment scale
(how many candidate pairs each benchmark dataset contains relative to the
paper's Table 1 sizes) is controlled by the ``REPRO_SCALE`` environment
variable or the ``scale=`` parameter of the experiment runners.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from pathlib import Path

import numpy as np

#: Master seed for the whole reproduction. Changing it re-rolls every
#: synthetic dataset and every simulated pre-trained transformer.
GLOBAL_SEED = 20210323  # EDBT 2021 opening day.

#: Default scale for benchmark runs (fraction of the paper's dataset sizes).
#: Full paper scale is 1.0; benchmarks default to a reduced scale so the
#: complete grid finishes in minutes on a laptop.
DEFAULT_BENCH_SCALE = 0.15

#: Train / validation / test proportions used throughout the paper.
SPLIT_PROPORTIONS = (0.6, 0.2, 0.2)

#: Simulated wall-clock budgets (hours) used in Section 5.3 / Table 5.
BUDGET_SHORT_HOURS = 1.0
BUDGET_LONG_HOURS = 6.0


def bench_scale() -> float:
    """Return the dataset scale used by the benchmark harness.

    Reads ``REPRO_SCALE`` from the environment; values are clamped to
    ``(0, 1]``. Invalid values fall back to :data:`DEFAULT_BENCH_SCALE`.
    """
    raw = os.environ.get("REPRO_SCALE", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_BENCH_SCALE
    if not 0.0 < value <= 1.0:
        return DEFAULT_BENCH_SCALE
    return value


def cache_root() -> Path | None:
    """Root directory of every on-disk result cache (None when disabled).

    Reads ``REPRO_CACHE_DIR`` (default ``.repro_cache``); the values
    ``off``/``none``/empty disable disk caching entirely. This is the
    single sanctioned read of that knob — the experiment and adapter
    cache layers derive their directories from here so that ambient
    environment access stays out of the deterministic core (rule
    DET003), and the knob is resolved identically everywhere.
    """
    raw = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    if raw.lower() in ("off", "none", ""):
        return None
    return Path(raw)


def stable_hash(*parts: object) -> int:
    """Hash a tuple of printable parts into a 32-bit integer, stably.

    Python's builtin ``hash`` is randomized per process for strings, so the
    library derives sub-seeds with CRC32 over the repr of the parts instead.
    """
    text = "␟".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def stable_digest(*parts: object) -> int:
    """Hash a tuple of printable parts into a 64-bit integer, stably.

    Cache *identity* needs more collision headroom than RNG sub-seeding:
    the adapter disk cache fingerprints arbitrary pair-id subsets (e.g.
    active-learning rounds), where a 32-bit CRC reaches birthday-collision
    odds after a few tens of thousands of distinct subsets. blake2b at 64
    bits pushes that to billions. :func:`stable_hash` stays CRC32 so every
    seeded RNG stream is unchanged.
    """
    text = "␟".join(repr(p) for p in parts)
    raw = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(raw, "big")


def rng_for(*scope: object, seed: int | None = None) -> np.random.Generator:
    """Create a deterministic RNG for a named scope.

    Parameters
    ----------
    scope:
        Any printable components naming the consumer, e.g.
        ``rng_for("dataset", "S-DG", 3)``. The same scope always yields the
        same stream.
    seed:
        Optional override of :data:`GLOBAL_SEED`.
    """
    base = GLOBAL_SEED if seed is None else seed
    return np.random.default_rng((base, stable_hash(*scope)))


#: Calibration version of the synthetic benchmark. Bumped whenever the
#: generators or difficulty knobs change, so cached experiment results
#: from an older calibration are never mixed with new ones.
DATA_VERSION = 3

#: Version of the *encode discipline* — how the frozen transformers
#: batch sequences into forward passes. Version 2 is the canonical
#: exact-length-bucketed forward (DESIGN.md): sequences are grouped by
#: token count and encoded unpadded, so each sequence's bits depend only
#: on its own content (BLAS GEMM bits vary with matrix shape, so the v1
#: mixed-length padded batches were not batch-composition invariant).
#: Folded into every embedding-derived cache key (adapter matrices,
#: entity store, experiment results) so artifacts encoded under an
#: older discipline are never mixed with new ones.
ENCODE_VERSION = 2


def _budget_bytes(name: str, default_mb: float) -> int | None:
    """Parse a ``*_MB`` byte-budget env knob (None = unbounded).

    ``off``/``none``/``unlimited`` and non-positive values disable the
    bound; unparsable values fall back to ``default_mb``.
    """
    raw = os.environ.get(name, "")
    if raw.lower() in ("off", "none", "unlimited"):
        return None
    try:
        value = float(raw)
    except ValueError:
        value = default_mb
    if value <= 0:
        return None
    return int(value * 1024 * 1024)


def adapter_cache_budget_bytes() -> int | None:
    """Byte budget of the in-memory adapter matrix cache.

    Reads ``REPRO_ADAPTER_CACHE_MB`` (default 512 MiB). Like
    :func:`cache_root`, this is the sanctioned reader of the knob so the
    deterministic core never touches the environment (DET003).
    """
    return _budget_bytes("REPRO_ADAPTER_CACHE_MB", 512.0)


def entity_cache_budget_bytes() -> int | None:
    """Byte budget of the in-memory entity-embedding store tier.

    Reads ``REPRO_ENTITY_CACHE_MB`` (default 256 MiB).
    """
    return _budget_bytes("REPRO_ENTITY_CACHE_MB", 256.0)
