"""Word-level vocabulary with frequency pruning.

Used by :class:`repro.text.word2vec.Word2Vec` and by the hash-kernel token
embeddings of the simulated transformers.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """A bidirectional token <-> id mapping built from corpus counts.

    Id 0 is always the unknown token ``<unk>``. Tokens are ordered by
    descending frequency, ties broken alphabetically, so the mapping is
    deterministic for a given corpus.
    """

    UNK = "<unk>"

    def __init__(self, min_count: int = 1, max_size: int | None = None) -> None:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.min_count = min_count
        self.max_size = max_size
        self._token_to_id: dict[str, int] = {self.UNK: 0}
        self._id_to_token: list[str] = [self.UNK]
        self._counts: Counter[str] = Counter()

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[list[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from pre-tokenized documents."""
        vocab = cls(min_count=min_count, max_size=max_size)
        for tokens in documents:
            vocab._counts.update(tokens)
        eligible = [
            (count, token)
            for token, count in vocab._counts.items()
            if count >= min_count
        ]
        eligible.sort(key=lambda pair: (-pair[0], pair[1]))
        if max_size is not None:
            eligible = eligible[: max(0, max_size - 1)]
        for _count, token in eligible:
            vocab._token_to_id[token] = len(vocab._id_to_token)
            vocab._id_to_token.append(token)
        return vocab

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def id_of(self, token: str) -> int:
        """Id of ``token``; 0 (the ``<unk>`` id) when out of vocabulary."""
        return self._token_to_id.get(token, 0)

    def token_of(self, index: int) -> str:
        """Token at ``index``; raises ``IndexError`` when out of range."""
        return self._id_to_token[index]

    def count_of(self, token: str) -> int:
        """Raw corpus count of ``token`` (0 when never seen)."""
        return self._counts.get(token, 0)

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map tokens to ids (unknowns become 0)."""
        return [self.id_of(token) for token in tokens]

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)}, min_count={self.min_count})"
