"""Word2Vec (skip-gram with negative sampling) in numpy.

Section 5.1 of the paper feeds AutoSklearn with "a standard Word2Vec
embedding, where the average Word2Vec embedding for each token of
non-numeric attributes has been computed and concatenated". This module is
that substrate: a compact, vectorized skip-gram trainer good enough for the
small per-dataset corpora the experiments use.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.config import rng_for
from repro.exceptions import NotFittedError
from repro.text.tokenization import BasicTokenizer
from repro.text.vocab import Vocabulary

__all__ = ["Word2Vec"]


class Word2Vec:
    """Skip-gram Word2Vec with negative sampling.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    window:
        Max distance between center and context word.
    negatives:
        Negative samples per positive pair.
    epochs:
        Passes over the corpus.
    learning_rate:
        Initial SGD step size, linearly decayed to 10% over training.
    min_count:
        Words rarer than this map to ``<unk>``.
    seed:
        Seeds initialization and sampling; the same corpus + seed always
        produces the same vectors.
    """

    def __init__(
        self,
        dim: int = 48,
        window: int = 4,
        negatives: int = 5,
        epochs: int = 3,
        learning_rate: float = 0.05,
        min_count: int = 2,
        seed: int = 0,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.min_count = min_count
        self.seed = seed
        self._tokenizer = BasicTokenizer()
        self.vocab: Vocabulary | None = None
        self._in_vectors: np.ndarray | None = None
        self._out_vectors: np.ndarray | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, corpus: Iterable[str]) -> "Word2Vec":
        """Train embeddings on an iterable of documents (plain strings)."""
        documents = [self._tokenizer.tokenize(doc) for doc in corpus]
        self.vocab = Vocabulary.from_documents(documents, min_count=self.min_count)
        rng = rng_for("word2vec", self.seed)
        size = len(self.vocab)
        self._in_vectors = (rng.random((size, self.dim)) - 0.5) / self.dim
        self._out_vectors = np.zeros((size, self.dim))

        encoded = [np.asarray(self.vocab.encode(doc)) for doc in documents if doc]
        if not encoded:
            return self

        noise = self._noise_distribution()
        pairs = self._training_pairs(encoded, rng)
        if len(pairs) == 0:
            return self

        total_steps = self.epochs * len(pairs)
        step = 0
        for _epoch in range(self.epochs):
            rng.shuffle(pairs)
            for center, context in pairs:
                lr = self.learning_rate * max(
                    0.1, 1.0 - step / max(1, total_steps)
                )
                self._sgd_step(center, context, noise, rng, lr)
                step += 1
        return self

    def _noise_distribution(self) -> np.ndarray:
        """Unigram^0.75 noise distribution for negative sampling."""
        assert self.vocab is not None
        counts = np.array(
            [max(1, self.vocab.count_of(tok)) for tok in self.vocab], dtype=float
        )
        weights = counts**0.75
        return weights / weights.sum()

    def _training_pairs(
        self, encoded: list[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        pairs: list[tuple[int, int]] = []
        for doc in encoded:
            n = len(doc)
            for i in range(n):
                span = int(rng.integers(1, self.window + 1))
                lo, hi = max(0, i - span), min(n, i + span + 1)
                for j in range(lo, hi):
                    if j != i:
                        pairs.append((int(doc[i]), int(doc[j])))
        return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)

    def _sgd_step(
        self,
        center: int,
        context: int,
        noise: np.ndarray,
        rng: np.random.Generator,
        lr: float,
    ) -> None:
        assert self._in_vectors is not None and self._out_vectors is not None
        v = self._in_vectors[center]
        targets = np.concatenate(
            ([context], rng.choice(len(noise), size=self.negatives, p=noise))
        )
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self._out_vectors[targets]
        scores = outs @ v
        preds = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
        grad = (preds - labels)[:, None]
        v_grad = (grad * outs).sum(axis=0)
        self._out_vectors[targets] -= lr * grad * v
        self._in_vectors[center] -= lr * v_grad

    # ------------------------------------------------------------ inference

    @property
    def vectors(self) -> np.ndarray:
        """The input embedding matrix (rows indexed by vocabulary id)."""
        if self._in_vectors is None:
            raise NotFittedError("Word2Vec.fit must be called first")
        return self._in_vectors

    def vector(self, token: str) -> np.ndarray:
        """Embedding of a single token (the ``<unk>`` row if unseen)."""
        if self.vocab is None or self._in_vectors is None:
            raise NotFittedError("Word2Vec.fit must be called first")
        return self._in_vectors[self.vocab.id_of(token)]

    def embed_text(self, text: str) -> np.ndarray:
        """Average embedding of the tokens of ``text`` (zeros if empty)."""
        if self.vocab is None or self._in_vectors is None:
            raise NotFittedError("Word2Vec.fit must be called first")
        ids = self.vocab.encode(self._tokenizer.tokenize(text))
        if not ids:
            return np.zeros(self.dim)
        return self._in_vectors[np.asarray(ids)].mean(axis=0)

    def most_similar(self, token: str, topn: int = 5) -> list[tuple[str, float]]:
        """Nearest vocabulary tokens by cosine similarity."""
        if self.vocab is None or self._in_vectors is None:
            raise NotFittedError("Word2Vec.fit must be called first")
        query = self.vector(token)
        norms = np.linalg.norm(self._in_vectors, axis=1)
        qn = np.linalg.norm(query)
        if qn == 0:
            return []
        sims = self._in_vectors @ query / (np.maximum(norms, 1e-12) * qn)
        order = np.argsort(-sims)
        results: list[tuple[str, float]] = []
        for idx in order:
            candidate = self.vocab.token_of(int(idx))
            if candidate in (token, Vocabulary.UNK):
                continue
            results.append((candidate, float(sims[idx])))
            if len(results) >= topn:
                break
        return results

    def embed_texts(self, texts: Sequence[str]) -> np.ndarray:
        """Stacked :meth:`embed_text` for a sequence of strings."""
        return np.vstack([self.embed_text(t) for t in texts])
