"""Classic string-similarity measures.

These are the similarity functions used by the synthetic dataset generators
(to verify that perturbed duplicates stay recognisable), by the magellan
style feature builder in :mod:`repro.adapter.features`, and by tests. All
functions return floats in ``[0, 1]`` unless stated otherwise, accept plain
``str`` arguments, and treat comparisons case-sensitively — normalize first
with :func:`repro.text.tokenization.normalize_text` if needed.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "levenshtein",
    "levenshtein_ratio",
    "jaro",
    "jaro_winkler",
    "jaccard",
    "overlap_coefficient",
    "dice",
    "cosine_similarity",
    "monge_elkan",
    "token_sort_ratio",
    "ngrams",
]


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (insert / delete / substitute).

    Uses the standard two-row dynamic program; O(len(a) * len(b)) time and
    O(min(len)) memory.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalized edit similarity: ``1 - distance / max_len``."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity, the base of Jaro-Winkler."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * la
    b_flags = [False] * lb
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if a_flags[i]:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix (≤ 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def _as_set(tokens: Iterable[str]) -> frozenset[str]:
    return tokens if isinstance(tokens, frozenset) else frozenset(tokens)


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard index of two token collections."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    if union == 0:
        return 0.0
    return len(sa & sb) / union


def overlap_coefficient(a: Iterable[str], b: Iterable[str]) -> float:
    """Szymkiewicz-Simpson overlap: ``|A ∩ B| / min(|A|, |B|)``."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa or not sb:
        return 1.0 if not sa and not sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def dice(a: Iterable[str], b: Iterable[str]) -> float:
    """Sørensen-Dice coefficient of two token collections."""
    sa, sb = _as_set(a), _as_set(b)
    total = len(sa) + len(sb)
    if total == 0:
        return 1.0
    return 2.0 * len(sa & sb) / total


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two dense vectors; 0.0 when either is zero."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def monge_elkan(
    a_tokens: Sequence[str],
    b_tokens: Sequence[str],
    inner=jaro_winkler,
) -> float:
    """Monge-Elkan similarity: average best inner-similarity per token of A.

    Asymmetric by definition; callers wanting symmetry should average the
    two directions.
    """
    if not a_tokens:
        return 1.0 if not b_tokens else 0.0
    if not b_tokens:
        return 0.0
    total = 0.0
    for ta in a_tokens:
        total += max(inner(ta, tb) for tb in b_tokens)
    return total / len(a_tokens)


def token_sort_ratio(a: str, b: str) -> float:
    """Edit similarity after sorting whitespace tokens (fuzzywuzzy-style)."""
    sa = " ".join(sorted(a.split()))
    sb = " ".join(sorted(b.split()))
    return levenshtein_ratio(sa, sb)


def ngrams(text: str, n: int = 3) -> list[str]:
    """Character n-grams of ``text``, padded with ``#`` at both ends."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    padded = "#" * (n - 1) + text + "#" * (n - 1)
    if len(padded) < n:
        return []
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]
