"""Text substrate: tokenization, vocabularies, similarity, word embeddings.

This package supplies the low-level NLP machinery every other subsystem
builds on: the tokenizers used by the EM adapter and the simulated
pre-trained transformers, classic string-similarity measures used by the
dataset generators and magellan-style feature builders, and a from-scratch
Word2Vec used for the no-adapter AutoSklearn baseline of Section 5.1.
"""

from repro.text.phonetic import metaphone, phonetic_equal, soundex
from repro.text.similarity import (
    cosine_similarity,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    monge_elkan,
    overlap_coefficient,
    token_sort_ratio,
)
from repro.text.tokenization import (
    BasicTokenizer,
    SubwordTokenizer,
    Tokenizer,
    normalize_text,
)
from repro.text.vocab import Vocabulary
from repro.text.word2vec import Word2Vec

__all__ = [
    "BasicTokenizer",
    "SubwordTokenizer",
    "Tokenizer",
    "Vocabulary",
    "Word2Vec",
    "cosine_similarity",
    "dice",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_ratio",
    "metaphone",
    "monge_elkan",
    "normalize_text",
    "overlap_coefficient",
    "phonetic_equal",
    "soundex",
    "token_sort_ratio",
]
