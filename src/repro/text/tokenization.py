"""Tokenizers used by the EM adapter and the simulated transformers.

Two families are provided:

* :class:`BasicTokenizer` — lower-cases, strips punctuation into separate
  tokens, and splits on whitespace. Used by Word2Vec, the dataset
  generators, and the magellan-style feature builder.
* :class:`SubwordTokenizer` — a greedy longest-match-first wordpiece-style
  tokenizer over a vocabulary learned from a corpus. Each simulated
  pre-trained architecture (BERT, ALBERT, …) owns a ``SubwordTokenizer``
  with its own vocabulary size and casing convention, mirroring how real
  checkpoints ship their own vocab.

Both satisfy the small :class:`Tokenizer` protocol: ``tokenize(text) ->
list[str]``.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable
from typing import Protocol

__all__ = ["Tokenizer", "BasicTokenizer", "SubwordTokenizer", "normalize_text"]

_PUNCT_RE = re.compile(r"([!-/:-@\[-`{-~])")
_WS_RE = re.compile(r"\s+")

#: Special tokens shared by all subword vocabularies.
PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN)


def normalize_text(text: str, lowercase: bool = True) -> str:
    """Collapse whitespace, optionally lower-case, separate punctuation."""
    text = _PUNCT_RE.sub(r" \1 ", text)
    text = _WS_RE.sub(" ", text).strip()
    if lowercase:
        text = text.lower()
    return text


class Tokenizer(Protocol):
    """Anything that turns a string into a list of tokens."""

    def tokenize(self, text: str) -> list[str]:  # pragma: no cover - protocol
        ...


class BasicTokenizer:
    """Whitespace + punctuation tokenizer with optional lower-casing."""

    def __init__(self, lowercase: bool = True) -> None:
        self.lowercase = lowercase

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into word and punctuation tokens."""
        normalized = normalize_text(text, lowercase=self.lowercase)
        if not normalized:
            return []
        return normalized.split(" ")

    def __repr__(self) -> str:
        return f"BasicTokenizer(lowercase={self.lowercase})"


class SubwordTokenizer:
    """Greedy wordpiece-style subword tokenizer.

    The vocabulary is learned from a corpus with a frequency-driven
    procedure: whole words above a frequency threshold enter the vocabulary
    directly; remaining coverage comes from character n-gram pieces ranked
    by corpus frequency. Unknown words are decomposed greedily
    longest-match-first, with continuation pieces written ``##piece`` as in
    BERT. Words that cannot be covered fall back to ``[UNK]``.
    """

    def __init__(
        self,
        vocab_size: int = 8192,
        lowercase: bool = True,
        max_piece_length: int = 8,
    ) -> None:
        if vocab_size < len(SPECIAL_TOKENS) + 30:
            raise ValueError(f"vocab_size too small: {vocab_size}")
        self.vocab_size = vocab_size
        self.lowercase = lowercase
        self.max_piece_length = max_piece_length
        self._basic = BasicTokenizer(lowercase=lowercase)
        self._pieces: dict[str, int] = {}
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    @property
    def pieces(self) -> dict[str, int]:
        """Mapping piece -> id (includes special tokens)."""
        return dict(self._pieces)

    def fit(self, corpus: Iterable[str]) -> "SubwordTokenizer":
        """Learn the subword vocabulary from an iterable of documents."""
        word_counts: Counter[str] = Counter()
        for document in corpus:
            word_counts.update(self._basic.tokenize(document))

        piece_counts: Counter[str] = Counter()
        for word, count in word_counts.items():
            for start in range(len(word)):
                for length in range(1, self.max_piece_length + 1):
                    piece = word[start : start + length]
                    if len(piece) < length:
                        break
                    key = piece if start == 0 else "##" + piece
                    piece_counts[key] += count

        vocab: dict[str, int] = {tok: i for i, tok in enumerate(SPECIAL_TOKENS)}
        # Single characters first so every word is always coverable.
        chars: set[str] = set()
        for word in word_counts:
            chars.update(word)
        for ch in sorted(chars):
            for key in (ch, "##" + ch):
                if key not in vocab:
                    vocab[key] = len(vocab)

        # Whole frequent words, then frequent pieces, until the budget fills.
        for word, _count in word_counts.most_common():
            if len(vocab) >= self.vocab_size:
                break
            if word not in vocab:
                vocab[word] = len(vocab)
        for piece, _count in piece_counts.most_common():
            if len(vocab) >= self.vocab_size:
                break
            if piece not in vocab:
                vocab[piece] = len(vocab)

        self._pieces = vocab
        self._fitted = True
        return self

    def tokenize(self, text: str) -> list[str]:
        """Tokenize ``text`` into subword pieces (greedy longest match)."""
        self._require_fitted()
        result: list[str] = []
        for word in self._basic.tokenize(text):
            result.extend(self._split_word(word))
        return result

    def encode(self, text: str) -> list[int]:
        """Tokenize and map pieces to their integer ids."""
        self._require_fitted()
        unk = self._pieces[UNK_TOKEN]
        return [self._pieces.get(piece, unk) for piece in self.tokenize(text)]

    def piece_id(self, piece: str) -> int:
        """Id of a single piece, falling back to the ``[UNK]`` id."""
        self._require_fitted()
        return self._pieces.get(piece, self._pieces[UNK_TOKEN])

    def _split_word(self, word: str) -> list[str]:
        if word in self._pieces:
            return [word]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = min(len(word), start + self.max_piece_length)
            found = None
            while end > start:
                candidate = word[start:end]
                key = candidate if start == 0 else "##" + candidate
                if key in self._pieces:
                    found = key
                    break
                end -= 1
            if found is None:
                return [UNK_TOKEN]
            pieces.append(found)
            start = end
        return pieces

    def _require_fitted(self) -> None:
        if not self._fitted:
            from repro.exceptions import NotFittedError

            raise NotFittedError(
                "SubwordTokenizer.fit must be called before tokenizing"
            )

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return (
            f"SubwordTokenizer(vocab_size={self.vocab_size}, "
            f"lowercase={self.lowercase}, {state})"
        )
