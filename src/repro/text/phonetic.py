"""Phonetic encodings: Soundex and a simplified Metaphone.

Classic record-linkage blocking keys — names that sound alike share a
code even when spelled differently. Used by the similarity library and
available as blocking keys (e.g. ``SortedNeighborhoodBlocker`` on a
Soundex key).
"""

from __future__ import annotations

__all__ = ["soundex", "metaphone", "phonetic_equal"]

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code (letter + 3 digits); '' for empty input."""
    letters = [ch for ch in word.lower() if ch.isalpha()]
    if not letters:
        return ""
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != previous:
            code.append(digit)
            if len(code) == 4:
                break
        if ch not in "hw":  # h/w do not reset the adjacency rule.
            previous = digit
    return "".join(code).ljust(4, "0")


_VOWELS = set("aeiou")


def metaphone(word: str, max_length: int = 6) -> str:
    """A compact Metaphone variant: consonant-skeleton phonetic code.

    Not the full 1990 algorithm; covers the transformations that matter
    for blocking: silent e, ck->k, ph->f, sh->x, th->0, c/g
    softening before e/i/y, and vowel dropping after the first letter.
    """
    letters = "".join(ch for ch in word.lower() if ch.isalpha())
    if not letters:
        return ""
    out: list[str] = []
    i = 0
    while i < len(letters) and len(out) < max_length:
        ch = letters[i]
        nxt = letters[i + 1] if i + 1 < len(letters) else ""
        if ch == nxt:  # Collapse doubled letters.
            i += 1
            continue
        if ch == "p" and nxt == "h":
            out.append("f")
            i += 2
            continue
        if ch == "s" and nxt == "h":
            out.append("x")
            i += 2
            continue
        if ch == "t" and nxt == "h":
            out.append("0")
            i += 2
            continue
        if ch == "c":
            if nxt == "k":
                out.append("k")
                i += 2
                continue
            out.append("s" if nxt in "eiy" else "k")
            i += 1
            continue
        if ch == "g":
            out.append("j" if nxt in "eiy" else "g")
            i += 1
            continue
        if ch == "e" and i == len(letters) - 1:
            i += 1  # Silent final e.
            continue
        if ch in _VOWELS:
            if i == 0:
                out.append(ch)
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def phonetic_equal(a: str, b: str) -> bool:
    """Whether two words agree under either phonetic encoding."""
    if not a or not b:
        return False
    return soundex(a) == soundex(b) or metaphone(a) == metaphone(b)
