"""Probability calibration: Platt scaling and isotonic regression.

EM decisions are threshold-sensitive (the paper's systems all tune the
match threshold on validation data), so calibrated probabilities matter
for downstream consumers who act on scores rather than labels — e.g. the
clerical-review queues of production ER deployments. Both calibrators
wrap an already-fitted model's validation scores.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["PlattCalibrator", "IsotonicCalibrator", "expected_calibration_error"]


class PlattCalibrator:
    """Sigmoid (Platt) calibration: fit ``sigmoid(a*s + b)`` on scores."""

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "PlattCalibrator":
        from scipy import optimize

        scores = np.asarray(scores, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)

        def loss(params: np.ndarray) -> float:
            a, b = params
            p = 1.0 / (1.0 + np.exp(-np.clip(a * scores + b, -35, 35)))
            eps = 1e-12
            return -float(
                np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
            )

        result = optimize.minimize(
            loss, np.array([1.0, 0.0]), method="Nelder-Mead"
        )
        self.a_, self.b_ = float(result.x[0]), float(result.x[1])
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        if not hasattr(self, "a_"):
            raise NotFittedError("PlattCalibrator must be fitted first")
        z = self.a_ * np.asarray(scores, dtype=np.float64) + self.b_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class IsotonicCalibrator:
    """Isotonic regression via pool-adjacent-violators (PAV).

    Produces a stepwise non-decreasing mapping from raw scores to
    calibrated probabilities; new scores are linearly interpolated between
    the learned knots.
    """

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "IsotonicCalibrator":
        scores = np.asarray(scores, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(scores) != len(y):
            raise ValueError("scores and y must have equal length")
        order = np.argsort(scores, kind="mergesort")
        x_sorted = scores[order]
        y_sorted = y[order]

        # PAV: maintain blocks (value, weight, x-range), merge violations.
        values: list[float] = []
        weights: list[float] = []
        starts: list[float] = []
        ends: list[float] = []
        for xi, yi in zip(x_sorted, y_sorted):
            values.append(float(yi))
            weights.append(1.0)
            starts.append(float(xi))
            ends.append(float(xi))
            while len(values) >= 2 and values[-2] > values[-1]:
                w = weights[-2] + weights[-1]
                v = (values[-2] * weights[-2] + values[-1] * weights[-1]) / w
                values[-2:] = [v]
                weights[-2:] = [w]
                starts[-2:] = [starts[-2]]
                ends[-2:] = [ends[-1]]
        # Each block contributes two knots (start and end at the block
        # value), so predictions are constant inside a block and ramp only
        # between blocks — the standard isotonic step shape.
        knots_x: list[float] = []
        knots_y: list[float] = []
        for v, lo, hi in zip(values, starts, ends):
            if knots_x and lo <= knots_x[-1]:
                lo = np.nextafter(knots_x[-1], np.inf)
            knots_x.append(lo)
            knots_y.append(v)
            if hi > lo:
                knots_x.append(hi)
                knots_y.append(v)
        self.knots_x_ = np.array(knots_x)
        self.knots_y_ = np.array(knots_y)
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        if not hasattr(self, "knots_x_"):
            raise NotFittedError("IsotonicCalibrator must be fitted first")
        scores = np.asarray(scores, dtype=np.float64)
        if len(self.knots_x_) == 1:
            return np.full(len(scores), float(self.knots_y_[0]))
        return np.interp(scores, self.knots_x_, self.knots_y_)


def expected_calibration_error(
    y: np.ndarray, proba: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: mean |accuracy - confidence| over equal-width probability bins."""
    y = np.asarray(y, dtype=np.float64)
    proba = np.asarray(proba, dtype=np.float64)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    total = 0.0
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (proba >= lo) & (proba < hi if hi < 1.0 else proba <= hi)
        if not mask.any():
            continue
        accuracy = float(y[mask].mean())
        confidence = float(proba[mask].mean())
        total += mask.mean() * abs(accuracy - confidence)
    return float(total)
