"""Estimator base class and cloning, in the scikit-learn idiom.

Every model in the zoo derives from :class:`Estimator`: hyper-parameters
are constructor arguments stored verbatim on ``self``, learned state lives
in trailing-underscore attributes, and :func:`clone` builds an unfitted
copy from :meth:`Estimator.get_params`. The AutoML layer relies on exactly
these three conventions.
"""

from __future__ import annotations

import inspect
from typing import Any, TypeVar

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["Estimator", "clone", "check_Xy", "check_is_fitted"]

E = TypeVar("E", bound="Estimator")


class Estimator:
    """Base class for all classifiers in the zoo.

    Subclasses implement ``fit(X, y)`` returning ``self``,
    ``predict_proba(X)`` returning an ``(n, 2)`` array for binary tasks,
    and inherit :meth:`predict`. Constructor arguments must all have
    defaults and be stored under their own names (enforced by
    :meth:`get_params`).
    """

    def fit(self: E, X: np.ndarray, y: np.ndarray) -> E:  # pragma: no cover
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class predictions from :meth:`predict_proba` (argmax)."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------- params

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, param in signature.parameters.items()
            if name != "self"
            and param.kind
            in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY)
        ]

    def get_params(self) -> dict[str, Any]:
        """Constructor hyper-parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self: E, **params: Any) -> E:
        """Set hyper-parameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no parameter {name!r}"
                )
            setattr(self, name, value)
        return self

    # ------------------------------------------------------------- state

    @property
    def is_fitted(self) -> bool:
        """True once ``classes_`` has been learned."""
        return hasattr(self, "classes_")

    def _store_classes(self, y: np.ndarray) -> np.ndarray:
        """Record ``classes_`` and return y encoded as class indices."""
        classes, encoded = np.unique(y, return_inverse=True)
        self.classes_: np.ndarray = classes
        return encoded

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: E) -> E:
    """An unfitted copy of ``estimator`` with identical hyper-parameters.

    Nested estimators (values that are themselves :class:`Estimator`
    instances, or lists of them) are cloned recursively.
    """
    params = {}
    for name, value in estimator.get_params().items():
        if isinstance(value, Estimator):
            params[name] = clone(value)
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Estimator) for v in value
        ):
            params[name] = type(value)(clone(v) for v in value)
        else:
            params[name] = value
    return type(estimator)(**params)


def check_Xy(
    X: np.ndarray, y: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and coerce the feature matrix (and labels, if given).

    X becomes a 2-D float64 array; NaNs are allowed (tree models handle
    them, others should impute first). y becomes a 1-D array whose length
    matches X.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if len(y) != len(X):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
    return X, y


def check_is_fitted(estimator: Estimator) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has been fit."""
    if not estimator.is_fitted:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before use"
        )
