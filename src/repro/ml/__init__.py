"""From-scratch classical ML zoo.

The model families AutoSklearn / AutoGluon / H2OAutoML search over,
re-implemented on numpy/scipy: linear models, CART trees, bagged and
extremely-randomized forests, histogram gradient boosting, k-NN, naive
Bayes — plus the metrics, model-selection utilities, preprocessing, and
ensembling machinery (voting, stacking, Caruana ensemble selection) the
AutoML layer composes them with.
"""

from repro.ml.base import Estimator, clone
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.calibration import (
    IsotonicCalibrator,
    PlattCalibrator,
    expected_calibration_error,
)
from repro.ml.ensemble import (
    EnsembleSelectionClassifier,
    StackingClassifier,
    VotingClassifier,
)
from repro.ml.forest import ExtraTreesClassifier, RandomForestClassifier
from repro.ml.linear import LinearSVMClassifier, LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_f1,
    cross_val_predict_proba,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import MinMaxScaler, SimpleImputer, StandardScaler
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "EnsembleSelectionClassifier",
    "Estimator",
    "ExtraTreesClassifier",
    "GaussianNaiveBayes",
    "GradientBoostingClassifier",
    "IsotonicCalibrator",
    "KFold",
    "KNeighborsClassifier",
    "LinearSVMClassifier",
    "LogisticRegression",
    "MinMaxScaler",
    "PlattCalibrator",
    "RandomForestClassifier",
    "SimpleImputer",
    "StackingClassifier",
    "StandardScaler",
    "StratifiedKFold",
    "VotingClassifier",
    "accuracy_score",
    "clone",
    "confusion_matrix",
    "cross_val_f1",
    "cross_val_predict_proba",
    "expected_calibration_error",
    "f1_score",
    "log_loss",
    "precision_recall_curve",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "train_test_split",
]
