"""Linear classifiers: logistic regression and a linear SVM.

Logistic regression is optimized with scipy's L-BFGS on the regularized
cross-entropy; the linear SVM minimizes squared hinge loss the same way
and calibrates probabilities with Platt scaling on its own decision
values.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import Estimator, check_is_fitted, check_Xy

__all__ = ["LogisticRegression", "LinearSVMClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def _add_bias(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((len(X), 1))])


class LogisticRegression(Estimator):
    """L2-regularized binary logistic regression (L-BFGS).

    Parameters
    ----------
    C:
        Inverse regularization strength (sklearn convention).
    max_iter:
        L-BFGS iteration cap.
    class_weight:
        ``None`` or ``"balanced"``; balanced reweights classes inversely
        to their frequency — important for imbalanced EM data.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        class_weight: str | None = None,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.class_weight = class_weight

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(X.shape[1] + 1)
            return self
        if len(self.classes_) != 2:
            raise ValueError("LogisticRegression supports binary targets only")

        Xb = _add_bias(X)
        weights = self._sample_weights(encoded)
        lam = 1.0 / (self.C * len(X))

        def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
            z = Xb @ w
            p = _sigmoid(z)
            eps = 1e-12
            loss = -np.mean(
                weights
                * (encoded * np.log(p + eps) + (1 - encoded) * np.log(1 - p + eps))
            )
            loss += 0.5 * lam * float(w[:-1] @ w[:-1])
            grad = Xb.T @ (weights * (p - encoded)) / len(X)
            grad[:-1] += lam * w[:-1]
            return loss, grad

        w0 = np.zeros(Xb.shape[1])
        result = optimize.minimize(
            objective,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        return _add_bias(X) @ self.coef_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        if len(self.classes_) == 1:
            return np.ones((len(X), 1))
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def _sample_weights(self, encoded: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(len(encoded))
        if self.class_weight != "balanced":
            raise ValueError(f"unknown class_weight {self.class_weight!r}")
        counts = np.bincount(encoded, minlength=2).astype(np.float64)
        counts[counts == 0] = 1.0
        per_class = len(encoded) / (2.0 * counts)
        return per_class[encoded]


class LinearSVMClassifier(Estimator):
    """Linear SVM with squared hinge loss and Platt-scaled probabilities."""

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        class_weight: str | None = None,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.class_weight = class_weight

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(X.shape[1] + 1)
            self.platt_ = (1.0, 0.0)
            return self
        if len(self.classes_) != 2:
            raise ValueError("LinearSVMClassifier supports binary targets only")

        signs = 2.0 * encoded - 1.0
        Xb = _add_bias(X)
        weights = self._sample_weights(encoded)
        lam = 1.0 / (self.C * len(X))

        def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
            margins = signs * (Xb @ w)
            slack = np.maximum(0.0, 1.0 - margins)
            loss = float(np.mean(weights * slack**2))
            loss += 0.5 * lam * float(w[:-1] @ w[:-1])
            grad_coeff = -2.0 * weights * slack * signs / len(X)
            grad = Xb.T @ grad_coeff
            grad[:-1] += lam * w[:-1]
            return loss, grad

        result = optimize.minimize(
            objective,
            np.zeros(Xb.shape[1]),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x
        self.platt_ = self._fit_platt(Xb @ self.coef_, encoded)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        return _add_bias(X) @ self.coef_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        if len(self.classes_) == 1:
            return np.ones((len(X), 1))
        a, b = self.platt_
        p1 = _sigmoid(a * self.decision_function(X) + b)
        return np.column_stack([1.0 - p1, p1])

    @staticmethod
    def _fit_platt(scores: np.ndarray, encoded: np.ndarray) -> tuple[float, float]:
        """Fit sigmoid calibration parameters on the training scores."""

        def objective(params: np.ndarray) -> float:
            a, b = params
            p = _sigmoid(a * scores + b)
            eps = 1e-12
            return -float(
                np.mean(
                    encoded * np.log(p + eps) + (1 - encoded) * np.log(1 - p + eps)
                )
            )

        result = optimize.minimize(
            objective, np.array([1.0, 0.0]), method="Nelder-Mead"
        )
        return float(result.x[0]), float(result.x[1])

    def _sample_weights(self, encoded: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(len(encoded))
        if self.class_weight != "balanced":
            raise ValueError(f"unknown class_weight {self.class_weight!r}")
        counts = np.bincount(encoded, minlength=2).astype(np.float64)
        counts[counts == 0] = 1.0
        per_class = len(encoded) / (2.0 * counts)
        return per_class[encoded]
