"""k-Nearest-Neighbours classifier (part of the AutoGluon-style zoo)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator, check_is_fitted, check_Xy

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Estimator):
    """Brute-force k-NN with uniform or distance weighting.

    Distances are Euclidean, computed blockwise so memory stays bounded on
    large test sets. Probabilities are the (weighted) class frequencies of
    the neighbourhood.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        if np.isnan(X).any():
            raise ValueError("KNeighborsClassifier does not accept NaNs; impute first")
        self._X = X
        self._y = self._store_classes(y)
        self.n_classes_ = len(self.classes_)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        k = min(self.n_neighbors, len(self._X))
        out = np.empty((len(X), self.n_classes_))
        train_sq = np.sum(self._X**2, axis=1)
        block = max(1, int(2e7 // max(1, len(self._X))))
        for start in range(0, len(X), block):
            chunk = X[start : start + block]
            d2 = (
                np.sum(chunk**2, axis=1)[:, None]
                - 2.0 * chunk @ self._X.T
                + train_sq[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            neighbor_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            rows = np.arange(len(chunk))[:, None]
            neighbor_d = np.sqrt(d2[rows, neighbor_idx])
            neighbor_y = self._y[neighbor_idx]
            if self.weights == "distance":
                w = 1.0 / np.maximum(neighbor_d, 1e-9)
            else:
                w = np.ones_like(neighbor_d)
            for cls in range(self.n_classes_):
                out[start : start + block, cls] = np.sum(
                    w * (neighbor_y == cls), axis=1
                )
        out /= np.maximum(out.sum(axis=1, keepdims=True), 1e-12)
        return out
