"""Cross-validation and splitting utilities."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.config import rng_for
from repro.ml.base import Estimator, clone

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_predict_proba",
    "cross_val_f1",
]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    stratify: bool = True,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split (X, y) into train and test partitions.

    Returns ``(X_train, X_test, y_train, y_test)``. With ``stratify`` the
    class balance of each partition matches the input.
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    if rng is None:
        rng = rng_for("model-selection", "train-test-split", test_size)
    y = np.asarray(y)
    n = len(y)
    test_mask = np.zeros(n, dtype=bool)
    if stratify:
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            rng.shuffle(idx)
            n_test = max(1, int(round(test_size * len(idx))))
            test_mask[idx[:n_test]] = True
    else:
        idx = rng.permutation(n)
        test_mask[idx[: max(1, int(round(test_size * n)))]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Plain k-fold splitter yielding ``(train_idx, test_idx)`` pairs."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(y)
        indices = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield np.sort(train_idx), np.sort(test_idx)


class StratifiedKFold:
    """K-fold preserving class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(len(y), dtype=np.int64)
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(idx)
            for fold, chunk in enumerate(np.array_split(idx, self.n_splits)):
                fold_of[chunk] = fold
        for i in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == i)
            train_idx = np.flatnonzero(fold_of != i)
            yield train_idx, test_idx


def cross_val_predict_proba(
    estimator: Estimator,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Out-of-fold P(class 1) for every row, via stratified k-fold.

    This is the primitive both stacking (AutoGluon / H2O style) and honest
    ensemble selection build on: every prediction comes from a model that
    never saw that row.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    proba = np.zeros(len(y), dtype=np.float64)
    splitter = StratifiedKFold(n_splits=n_splits, seed=seed)
    for train_idx, test_idx in splitter.split(y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        fold_proba = model.predict_proba(X[test_idx])
        proba[test_idx] = fold_proba[:, 1]
    return proba


def cross_val_f1(
    estimator: Estimator,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
    threshold: float = 0.5,
) -> float:
    """Mean out-of-fold F1 at a fixed threshold."""
    from repro.ml.metrics import f1_score

    proba = cross_val_predict_proba(estimator, X, y, n_splits=n_splits, seed=seed)
    return f1_score(y, (proba >= threshold).astype(np.int64))
