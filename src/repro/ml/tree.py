"""CART decision trees over binned features.

The tree grows *breadth-first*: all frontier nodes of one depth are
processed in a single vectorized pass — their per-feature class histograms
come from one ``bincount`` over composite (node, feature, bin) keys — so
the Python overhead per node is constant regardless of tree size. Each
node examines its own random feature subset (``max_features``), which is
what differentiates a bagged Random Forest from a single CART; with
``splitter="random"`` a random threshold per feature is used instead of
the Gini-optimal one (Extremely Randomized Trees).
"""

from __future__ import annotations

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml.base import Estimator, check_is_fitted, check_Xy

__all__ = ["DecisionTreeClassifier"]




class DecisionTreeClassifier(Estimator):
    """Binary/multiclass CART classifier on binned features.

    Parameters
    ----------
    max_depth:
        Depth cap; ``None`` means unlimited (bounded by data).
    min_samples_split / min_samples_leaf:
        Pre-pruning thresholds.
    max_features:
        Features examined per node: ``None`` (all), ``"sqrt"``, an int, or
        a float fraction.
    splitter:
        ``"best"`` (exact Gini over bins) or ``"random"`` (one random
        threshold per feature, extra-trees style).
    n_bins:
        Histogram resolution for continuous features.
    seed:
        Seeds feature subsampling and random thresholds.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        splitter: str = "best",
        n_bins: int = 64,
        seed: int = 0,
    ) -> None:
        if splitter not in ("best", "random"):
            raise ValueError(f"unknown splitter {splitter!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.n_bins = n_bins
        self.seed = seed

    # ---------------------------------------------------------------- fit

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        binned: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree.

        ``binned`` lets ensemble callers share one :class:`BinMapper`
        across all trees; when given, ``X`` is only used for shape checks.
        """
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        self.n_classes_ = len(self.classes_)
        if binned is None:
            self._mapper = BinMapper(n_bins=self.n_bins)
            binned = self._mapper.fit_transform(X)
        else:
            self._mapper = None
        if sample_weight is None:
            sample_weight = np.ones(len(y), dtype=np.float64)

        rng = np.random.default_rng(self.seed)
        self._grow_breadth_first(binned, encoded, sample_weight, rng)
        return self

    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(mf, float):
            return max(1, int(mf * n_features))
        return max(1, min(int(mf), n_features))

    def _grow_breadth_first(
        self,
        binned: np.ndarray,
        y: np.ndarray,
        weight: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        n_rows, n_features = binned.shape
        k = self._n_candidate_features(n_features)
        max_depth = self.max_depth if self.max_depth is not None else 10**9

        # Flat node arrays, grown dynamically.
        feat: list[int] = [-1]
        thresh: list[int] = [0]
        left: list[int] = [-1]
        right: list[int] = [-1]
        values: list[np.ndarray | None] = [None]

        # Rows participating in growth; weight-0 rows still get routed at
        # prediction time but contribute nothing to histograms.
        node_of_row = np.zeros(n_rows, dtype=np.int64)
        active_nodes = [0]
        depth = 0
        uniform = np.full(self.n_classes_, 1.0 / self.n_classes_)

        while active_nodes and depth <= max_depth:
            slot_of_node = {node: s for s, node in enumerate(active_nodes)}
            n_active = len(active_nodes)
            in_active = np.isin(node_of_row, active_nodes)
            rows = np.flatnonzero(in_active)
            if len(rows) == 0:
                break
            slots = np.array(
                [slot_of_node[n] for n in node_of_row[rows]], dtype=np.int64
            )

            # Per-node feature subsets.
            if k >= n_features:
                feat_matrix = np.tile(np.arange(n_features), (n_active, 1))
            else:
                feat_matrix = np.argsort(
                    rng.random((n_active, n_features)), axis=1
                )[:, :k]

            width = feat_matrix.shape[1]
            stride = self.n_bins  # BinMapper guarantees bins < n_bins.
            row_feats = feat_matrix[slots]  # (n_rows_active, width)
            bins = binned[rows[:, None], row_feats].astype(np.int64)
            keys = (
                slots[:, None] * (width * stride)
                + np.arange(width)[None, :] * stride
                + bins
            ).ravel()
            size = n_active * width * stride

            hist = np.empty((n_active, width, stride, self.n_classes_))
            w_rows = weight[rows]
            y_rows = y[rows]
            for cls in range(self.n_classes_):
                cls_w = np.repeat(w_rows * (y_rows == cls), width)
                hist[:, :, :, cls] = np.bincount(
                    keys, weights=cls_w, minlength=size
                ).reshape(n_active, width, stride)

            totals = hist.sum(axis=(1, 2)) / width  # (n_active, n_classes)
            total_w = totals.sum(axis=1)  # (n_active,)
            node_sizes = np.bincount(slots, minlength=n_active)

            cum = np.cumsum(hist, axis=2)[:, :, :-1, :]
            left_w = cum.sum(axis=3)
            right_w = total_w[:, None, None] - left_w
            valid = (left_w >= self.min_samples_leaf) & (
                right_w >= self.min_samples_leaf
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - np.sum(
                    (cum / np.maximum(left_w[..., None], 1e-12)) ** 2, axis=3
                )
                right_counts = totals[:, None, None, :] - cum
                gini_right = 1.0 - np.sum(
                    (right_counts / np.maximum(right_w[..., None], 1e-12)) ** 2,
                    axis=3,
                )
            parent_gini = 1.0 - np.sum(
                (totals / np.maximum(total_w[:, None], 1e-12)) ** 2, axis=1
            )
            gain = np.where(
                valid,
                parent_gini[:, None, None]
                - (left_w * gini_left + right_w * gini_right)
                / np.maximum(total_w[:, None, None], 1e-12),
                -np.inf,
            )
            if self.splitter == "random":
                noise = rng.random(gain.shape)
                pick = np.where(valid, noise, -np.inf)
                t_choice = np.argmax(pick, axis=2)  # (n_active, width)
                masked = np.full_like(gain, -np.inf)
                s_idx, f_idx = np.meshgrid(
                    np.arange(n_active), np.arange(width), indexing="ij"
                )
                masked[s_idx, f_idx, t_choice] = gain[s_idx, f_idx, t_choice]
                gain = masked

            flat_gain = gain.reshape(n_active, -1)
            best_flat = np.argmax(flat_gain, axis=1)
            best_gain = flat_gain[np.arange(n_active), best_flat]
            best_feat_slot = best_flat // (stride - 1)
            best_bin = best_flat % (stride - 1)

            # Group rows by node slot once, so the split loop touches each
            # node's rows directly instead of rescanning all rows per node.
            order = np.argsort(slots, kind="stable")
            sorted_rows = rows[order]
            starts = np.searchsorted(slots[order], np.arange(n_active))
            ends = np.searchsorted(slots[order], np.arange(n_active), side="right")

            next_active: list[int] = []
            new_assign = node_of_row.copy()
            for s, node in enumerate(active_nodes):
                counts = totals[s]
                node_rows = sorted_rows[starts[s] : ends[s]]
                splittable = (
                    depth < max_depth
                    and node_sizes[s] >= self.min_samples_split
                    and counts.max() < total_w[s]
                    and best_gain[s] > 1e-9
                )
                if not splittable:
                    values[node] = (
                        counts / total_w[s] if total_w[s] > 0 else uniform.copy()
                    )
                    new_assign[node_rows] = -1
                    continue
                f = int(feat_matrix[s, best_feat_slot[s]])
                t = int(best_bin[s])
                go_left = binned[node_rows, f] <= t
                left_id = len(feat)
                right_id = left_id + 1
                for _ in range(2):
                    feat.append(-1)
                    thresh.append(0)
                    left.append(-1)
                    right.append(-1)
                    values.append(None)
                feat[node] = f
                thresh[node] = t
                left[node] = left_id
                right[node] = right_id
                new_assign[node_rows[go_left]] = left_id
                new_assign[node_rows[~go_left]] = right_id
                next_active.extend((left_id, right_id))

            node_of_row = new_assign
            active_nodes = next_active
            depth += 1

        # Any nodes still active after the loop become leaves.
        for node in active_nodes:
            node_rows = np.flatnonzero(node_of_row == node)
            counts = np.bincount(
                y[node_rows], weights=weight[node_rows], minlength=self.n_classes_
            )
            total = counts.sum()
            values[node] = counts / total if total > 0 else uniform.copy()

        self._feat = np.array(feat)
        self._thresh = np.array(thresh, dtype=np.int64)
        self._left = np.array(left)
        self._right = np.array(right)
        self._values = np.vstack(
            [v if v is not None else uniform for v in values]
        )

    # ---------------------------------------------------------- inference

    def predict_proba(
        self, X: np.ndarray, binned: np.ndarray | None = None
    ) -> np.ndarray:
        check_is_fitted(self)
        if binned is None:
            if self._mapper is None:
                raise ValueError(
                    "tree was fitted on shared bins; pass binned= explicitly"
                )
            X, _ = check_Xy(X)
            binned = self._mapper.transform(X)
        binned = binned.astype(np.int64, copy=False)
        node_ids = np.zeros(len(binned), dtype=np.int64)
        active = self._feat[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            current = node_ids[rows]
            feats = self._feat[current]
            go_left = binned[rows, feats] <= self._thresh[current]
            node_ids[rows] = np.where(
                go_left, self._left[current], self._right[current]
            )
            active[rows] = self._feat[node_ids[rows]] >= 0
        return self._values[node_ids]

    @property
    def node_count(self) -> int:
        """Number of nodes in the grown tree."""
        check_is_fitted(self)
        return len(self._feat)

    @property
    def depth(self) -> int:
        """Maximum depth of the grown tree."""
        check_is_fitted(self)

        def walk(node_id: int) -> int:
            if self._feat[node_id] < 0:
                return 0
            return 1 + max(
                walk(int(self._left[node_id])), walk(int(self._right[node_id]))
            )

        return walk(0)
