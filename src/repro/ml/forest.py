"""Bagged tree ensembles: Random Forest and Extremely Randomized Trees.

Both share one :class:`~repro.ml._binning.BinMapper` across all trees so
the feature matrix is binned once per fit/predict, and average the class
distributions of their member trees.
"""

from __future__ import annotations

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml.base import Estimator, check_is_fitted, check_Xy
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "ExtraTreesClassifier"]


class _BaggedTrees(Estimator):
    """Shared implementation of the two forest variants."""

    _splitter = "best"
    _default_bootstrap = True

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool | None = None,
        class_weight: str | None = None,
        n_bins: int = 64,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.n_bins = n_bins
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaggedTrees":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        self.n_classes_ = len(self.classes_)
        self._mapper = BinMapper(n_bins=self.n_bins)
        binned = self._mapper.fit_transform(X)

        rng = np.random.default_rng(self.seed)
        use_bootstrap = (
            self._default_bootstrap if self.bootstrap is None else self.bootstrap
        )
        base_weight = self._class_weights(encoded)

        self.estimators_: list[DecisionTreeClassifier] = []
        n = len(y)
        for i in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self._splitter,
                n_bins=self.n_bins,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if use_bootstrap:
                counts = np.bincount(
                    rng.integers(0, n, size=n), minlength=n
                ).astype(np.float64)
                weight = counts * base_weight
            else:
                weight = base_weight
            tree.fit(X, y, sample_weight=weight, binned=binned)
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        binned = self._mapper.transform(X)
        proba = np.zeros((len(X), self.n_classes_))
        for tree in self.estimators_:
            proba += tree.predict_proba(X, binned=binned)
        return proba / len(self.estimators_)

    def _class_weights(self, encoded: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(len(encoded))
        if self.class_weight != "balanced":
            raise ValueError(f"unknown class_weight {self.class_weight!r}")
        counts = np.bincount(encoded, minlength=self.n_classes_).astype(np.float64)
        counts[counts == 0] = 1.0
        per_class = len(encoded) / (self.n_classes_ * counts)
        return per_class[encoded]


class RandomForestClassifier(_BaggedTrees):
    """Bootstrap-bagged CART forest with sqrt feature subsampling."""

    _splitter = "best"
    _default_bootstrap = True


class ExtraTreesClassifier(_BaggedTrees):
    """Extremely Randomized Trees: random thresholds, no bootstrap."""

    _splitter = "random"
    _default_bootstrap = False
