"""Quantile feature binning shared by the tree and boosting models.

Trees and gradient boosting both operate on binned features (LightGBM
style): each column is mapped to small integer bins by quantile edges
learned on the training data, so split finding reduces to histogram
accumulation. Missing values (NaN) get the dedicated bin 0, which ordered
splits send to the left child — a simple but standard missing-value
policy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["BinMapper", "MISSING_BIN"]

#: Bin index reserved for missing values.
MISSING_BIN = 0


class BinMapper:
    """Learn per-column quantile bin edges and map values to uint8 bins.

    Bin 0 is reserved for NaN; finite values occupy bins ``1..n_bins-1``.
    """

    def __init__(self, n_bins: int = 64) -> None:
        if not 4 <= n_bins <= 256:
            raise ValueError(f"n_bins must be in [4, 256], got {n_bins}")
        self.n_bins = n_bins

    def fit(self, X: np.ndarray) -> "BinMapper":
        X = np.asarray(X, dtype=np.float64)
        edges: list[np.ndarray] = []
        for col in range(X.shape[1]):
            values = X[:, col]
            finite = values[~np.isnan(values)]
            if len(finite) == 0:
                edges.append(np.array([]))
                continue
            quantiles = np.linspace(0, 1, self.n_bins - 1)
            col_edges = np.unique(np.quantile(finite, quantiles))
            # Interior edges only: values <= first edge land in bin 1.
            edges.append(col_edges[1:-1] if len(col_edges) > 2 else col_edges[:0])
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "edges_"):
            raise NotFittedError("BinMapper must be fitted before transform")
        X = np.asarray(X, dtype=np.float64)
        binned = np.empty(X.shape, dtype=np.uint8)
        for col in range(X.shape[1]):
            values = X[:, col]
            missing = np.isnan(values)
            col_edges = self.edges_[col]
            if len(col_edges) == 0:
                bins = np.ones(len(values), dtype=np.int64)
            else:
                bins = np.searchsorted(col_edges, values, side="right") + 1
            bins[missing] = MISSING_BIN
            binned[:, col] = bins.astype(np.uint8)
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def actual_bins_(self) -> list[int]:
        """Number of occupied bins per column (including the missing bin)."""
        if not hasattr(self, "edges_"):
            raise NotFittedError("BinMapper must be fitted first")
        return [len(edges) + 2 for edges in self.edges_]
