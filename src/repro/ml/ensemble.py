"""Ensembling machinery the AutoML systems compose models with.

* :class:`VotingClassifier` — soft-voting probability average.
* :class:`StackingClassifier` — out-of-fold stacking with a logistic
  meta-learner (the H2O "super learner" / AutoGluon stacker layer).
* :class:`EnsembleSelectionClassifier` — greedy forward ensemble selection
  with replacement (Caruana et al.), the post-hoc ensembling step of
  AutoSklearn.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator, check_is_fitted, check_Xy, clone
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import f1_score, log_loss
from repro.ml.model_selection import cross_val_predict_proba

__all__ = [
    "VotingClassifier",
    "StackingClassifier",
    "EnsembleSelectionClassifier",
    "caruana_selection",
]


class VotingClassifier(Estimator):
    """Soft voting: weighted average of member probabilities."""

    def __init__(
        self,
        estimators: list[Estimator] | None = None,
        weights: list[float] | None = None,
    ) -> None:
        self.estimators = estimators if estimators is not None else []
        self.weights = weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "VotingClassifier":
        if not self.estimators:
            raise ValueError("VotingClassifier needs at least one estimator")
        X, y = check_Xy(X, y)
        self._store_classes(y)
        self.fitted_estimators_ = []
        for estimator in self.estimators:
            model = clone(estimator)
            model.fit(X, y)
            self.fitted_estimators_.append(model)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        weights = self.weights or [1.0] * len(self.fitted_estimators_)
        total = np.zeros((len(X), len(self.classes_)))
        for weight, model in zip(weights, self.fitted_estimators_):
            total += weight * model.predict_proba(X)
        return total / max(1e-12, sum(weights))


class StackingClassifier(Estimator):
    """Two-layer stacking with honest (out-of-fold) level-1 features.

    Base models are refit on the full training set for inference; the
    meta-learner sees only out-of-fold predictions during fitting, so it
    is never trained on leaked probabilities.
    """

    def __init__(
        self,
        estimators: list[Estimator] | None = None,
        meta_learner: Estimator | None = None,
        n_splits: int = 5,
        passthrough: bool = False,
        seed: int = 0,
    ) -> None:
        self.estimators = estimators if estimators is not None else []
        self.meta_learner = meta_learner
        self.n_splits = n_splits
        self.passthrough = passthrough
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "StackingClassifier":
        if not self.estimators:
            raise ValueError("StackingClassifier needs at least one estimator")
        X, y = check_Xy(X, y)
        self._store_classes(y)

        oof_columns = []
        self.fitted_estimators_ = []
        for estimator in self.estimators:
            oof = cross_val_predict_proba(
                estimator, X, y, n_splits=self.n_splits, seed=self.seed
            )
            oof_columns.append(oof)
            model = clone(estimator)
            model.fit(X, y)
            self.fitted_estimators_.append(model)

        meta_X = np.column_stack(oof_columns)
        if self.passthrough:
            meta_X = np.hstack([meta_X, X])
        meta = (
            clone(self.meta_learner)
            if self.meta_learner is not None
            else LogisticRegression(C=10.0)
        )
        meta.fit(meta_X, y)
        self.fitted_meta_ = meta
        return self

    def _meta_features(self, X: np.ndarray) -> np.ndarray:
        columns = [
            model.predict_proba(X)[:, 1] for model in self.fitted_estimators_
        ]
        meta_X = np.column_stack(columns)
        if self.passthrough:
            meta_X = np.hstack([meta_X, X])
        return meta_X

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        return self.fitted_meta_.predict_proba(self._meta_features(X))


def caruana_selection(
    proba_matrix: np.ndarray,
    y: np.ndarray,
    n_rounds: int = 20,
    metric: str = "f1",
) -> np.ndarray:
    """Greedy forward ensemble selection with replacement.

    ``proba_matrix`` holds one column of validation P(match) per candidate
    model. Returns the selection weights (counts normalized to sum 1).
    Models may be picked repeatedly, which implements the implicit
    weighting of the original algorithm.
    """
    if proba_matrix.ndim != 2:
        raise ValueError("proba_matrix must be (n_samples, n_models)")
    n_models = proba_matrix.shape[1]
    counts = np.zeros(n_models)
    current = np.zeros(len(y))
    size = 0

    def score(p: np.ndarray) -> float:
        if metric == "f1":
            return f1_score(y, (p >= 0.5).astype(np.int64))
        if metric == "logloss":
            return -log_loss(y, p)
        raise ValueError(f"unknown metric {metric!r}")

    for _ in range(n_rounds):
        best_gain = -np.inf
        best_model = -1
        for m in range(n_models):
            candidate = (current * size + proba_matrix[:, m]) / (size + 1)
            s = score(candidate)
            if s > best_gain:
                best_gain = s
                best_model = m
        counts[best_model] += 1
        current = (current * size + proba_matrix[:, best_model]) / (size + 1)
        size += 1
    if counts.sum() == 0:
        counts[:] = 1.0
    return counts / counts.sum()


class EnsembleSelectionClassifier(Estimator):
    """Caruana ensemble over pre-fitted models (AutoSklearn's final step).

    Unlike the other ensembles this one receives *already fitted* models
    plus their validation probabilities, because the AutoML search loop has
    evaluated each candidate exactly once and refitting would waste budget.
    """

    def __init__(
        self,
        fitted_models: list[Estimator] | None = None,
        weights: np.ndarray | None = None,
    ) -> None:
        self.fitted_models = fitted_models if fitted_models is not None else []
        self.weights = weights

    @classmethod
    def from_validation(
        cls,
        fitted_models: list[Estimator],
        valid_proba: np.ndarray,
        y_valid: np.ndarray,
        n_rounds: int = 20,
    ) -> "EnsembleSelectionClassifier":
        """Build the ensemble by greedy selection on validation data."""
        weights = caruana_selection(valid_proba, y_valid, n_rounds=n_rounds)
        ensemble = cls(fitted_models=fitted_models, weights=weights)
        ensemble.classes_ = fitted_models[0].classes_
        return ensemble

    def fit(self, X: np.ndarray, y: np.ndarray) -> "EnsembleSelectionClassifier":
        raise NotImplementedError(
            "use EnsembleSelectionClassifier.from_validation; members are pre-fitted"
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        if self.weights is None:
            raise ValueError("ensemble weights missing")
        total = np.zeros((len(X), len(self.classes_)))
        for weight, model in zip(self.weights, self.fitted_models):
            if weight > 0:
                total += weight * model.predict_proba(X)
        return total
