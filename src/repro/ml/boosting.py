"""Histogram gradient boosting (LightGBM-style) with logistic loss.

Stands in for both the LightGBM and CatBoost members of AutoGluon's zoo
and for AutoSklearn's gradient-boosting family. Trees are second-order
(Newton) regression trees over uint8-binned features; split gain follows
the XGBoost formulation with L2 leaf regularization. Two classic
optimizations keep the pure-numpy implementation fast: feature
subsampling is decided once per tree (so parent/child histograms share a
feature set), and each node computes the histogram of its *smaller* child
only, deriving the sibling by subtraction from the parent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml.base import Estimator, check_is_fitted, check_Xy

__all__ = ["GradientBoostingClassifier"]




@dataclass
class _RegNode:
    feature: int = -1
    threshold_bin: int = 0
    left: int = -1
    right: int = -1
    value: float = 0.0


class _HistRegressionTree:
    """One boosting round: a Newton regression tree on binned features."""

    def __init__(
        self,
        max_depth: int,
        min_samples_leaf: int,
        reg_lambda: float,
        features: np.ndarray,
        rng: np.random.Generator,
        stride: int = 64,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.features = features  # Per-tree feature subset (colsample).
        self.rng = rng
        self.stride = stride  # Bin stride; BinMapper keeps bins < stride.
        self.nodes: list[_RegNode] = []

    def fit(
        self, binned: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> "_HistRegressionTree":
        self._binned = binned
        self._grad = grad
        self._hess = hess
        root_idx = np.flatnonzero(hess >= 0)  # All rows.
        g_hist, h_hist = self._histograms(root_idx)
        self._grow(root_idx, g_hist, h_hist, depth=0)
        self._finalize()
        del self._binned, self._grad, self._hess
        return self

    # ------------------------------------------------------------- hists

    def _histograms(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(n_feats, 256) gradient and hessian histograms of ``indices``."""
        feats = self.features
        stride = self.stride
        n_feats = len(feats)
        g_hist = np.empty((n_feats, stride))
        h_hist = np.empty((n_feats, stride))
        chunk = max(1, int(4_000_000 // max(1, len(indices))))
        node_grad = self._grad[indices]
        node_hess = self._hess[indices]
        rows = self._binned[indices]
        for start in range(0, n_feats, chunk):
            cols = feats[start : start + chunk]
            width = len(cols)
            sub = rows[:, cols].astype(np.int64)
            sub += np.arange(width) * stride
            flat = sub.ravel()
            size = width * stride
            g_hist[start : start + width] = np.bincount(
                flat, weights=np.repeat(node_grad, width), minlength=size
            ).reshape(width, stride)
            h_hist[start : start + width] = np.bincount(
                flat, weights=np.repeat(node_hess, width), minlength=size
            ).reshape(width, stride)
        return g_hist, h_hist

    # -------------------------------------------------------------- grow

    def _leaf_value(self, g: float, h: float) -> float:
        return -g / (h + self.reg_lambda)

    def _grow(
        self,
        indices: np.ndarray,
        g_hist: np.ndarray,
        h_hist: np.ndarray,
        depth: int,
    ) -> int:
        node_id = len(self.nodes)
        self.nodes.append(_RegNode())
        g_total = float(g_hist.sum())
        h_total = float(h_hist.sum())

        if depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf:
            self.nodes[node_id].value = self._leaf_value(g_total, h_total)
            return node_id

        split = self._find_split(g_hist, h_hist, g_total, h_total)
        if split is None:
            self.nodes[node_id].value = self._leaf_value(g_total, h_total)
            return node_id

        feature, threshold_bin = split
        go_left = self._binned[indices, feature] <= threshold_bin
        left_idx = indices[go_left]
        right_idx = indices[~go_left]
        if (
            len(left_idx) < self.min_samples_leaf
            or len(right_idx) < self.min_samples_leaf
        ):
            self.nodes[node_id].value = self._leaf_value(g_total, h_total)
            return node_id

        # Histogram subtraction: bincount the smaller child, derive the
        # larger one from the parent.
        if len(left_idx) <= len(right_idx):
            g_left, h_left = self._histograms(left_idx)
            g_right, h_right = g_hist - g_left, h_hist - h_left
        else:
            g_right, h_right = self._histograms(right_idx)
            g_left, h_left = g_hist - g_right, h_hist - h_right

        self.nodes[node_id].feature = feature
        self.nodes[node_id].threshold_bin = threshold_bin
        self.nodes[node_id].left = self._grow(left_idx, g_left, h_left, depth + 1)
        self.nodes[node_id].right = self._grow(
            right_idx, g_right, h_right, depth + 1
        )
        return node_id

    def _find_split(
        self,
        g_hist: np.ndarray,
        h_hist: np.ndarray,
        g_total: float,
        h_total: float,
    ) -> tuple[int, int] | None:
        lam = self.reg_lambda
        parent_score = g_total**2 / (h_total + lam)
        g_left = np.cumsum(g_hist, axis=1)[:, :-1]
        h_left = np.cumsum(h_hist, axis=1)[:, :-1]
        g_right = g_total - g_left
        h_right = h_total - h_left
        valid = (h_left > 1e-12) & (h_right > 1e-12)
        gain = np.where(
            valid,
            g_left**2 / (h_left + lam) + g_right**2 / (h_right + lam) - parent_score,
            -np.inf,
        )
        f_idx, t_idx = np.unravel_index(int(np.argmax(gain)), gain.shape)
        if gain[f_idx, t_idx] <= 1e-7:
            return None
        return (int(self.features[f_idx]), int(t_idx))

    # --------------------------------------------------------- inference

    def _finalize(self) -> None:
        self.feat = np.array([n.feature for n in self.nodes])
        self.thresh = np.array([n.threshold_bin for n in self.nodes], dtype=np.int64)
        self.left = np.array([n.left for n in self.nodes])
        self.right = np.array([n.right for n in self.nodes])
        self.values = np.array([n.value for n in self.nodes])

    def predict(self, binned: np.ndarray) -> np.ndarray:
        node_ids = np.zeros(len(binned), dtype=np.int64)
        active = self.feat[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            current = node_ids[rows]
            go_left = (
                binned[rows, self.feat[current]].astype(np.int64)
                <= self.thresh[current]
            )
            node_ids[rows] = np.where(
                go_left, self.left[current], self.right[current]
            )
            active[rows] = self.feat[node_ids[rows]] >= 0
        return self.values[node_ids]


class GradientBoostingClassifier(Estimator):
    """Binary histogram GBM with logistic loss and early stopping.

    Parameters
    ----------
    n_estimators:
        Boosting rounds cap.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of each regression tree.
    min_samples_leaf, reg_lambda:
        Leaf regularization.
    subsample:
        Row subsampling fraction per round (stochastic boosting).
    colsample:
        Feature subsampling fraction, drawn once per tree.
    early_stopping_rounds:
        Stop when the held-out logloss has not improved for this many
        rounds (10% of the training rows are held out); ``None`` disables.
    n_bins, seed:
        Histogram resolution and RNG seed.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 5,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        colsample: float = 1.0,
        early_stopping_rounds: int | None = 20,
        n_bins: int = 64,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.colsample = colsample
        self.early_stopping_rounds = early_stopping_rounds
        self.n_bins = n_bins
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y).astype(np.float64)
        self._mapper = BinMapper(n_bins=self.n_bins)
        if len(self.classes_) == 1:
            self._base_score = 10.0 if self.classes_[0] == 1 else -10.0
            self._trees: list[_HistRegressionTree] = []
            self._mapper.fit(X)
            return self
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier is binary only")

        rng = np.random.default_rng(self.seed)
        binned_all = self._mapper.fit_transform(X)

        if self.early_stopping_rounds is not None and len(y) >= 50:
            n_valid = max(10, int(0.1 * len(y)))
            perm = rng.permutation(len(y))
            valid_idx, train_idx = perm[:n_valid], perm[n_valid:]
        else:
            train_idx = np.arange(len(y))
            valid_idx = np.array([], dtype=np.int64)

        binned = binned_all[train_idx]
        target = encoded[train_idx]
        prior = float(np.clip(target.mean(), 1e-6, 1 - 1e-6))
        self._base_score = float(np.log(prior / (1 - prior)))

        raw = np.full(len(target), self._base_score)
        raw_valid = np.full(len(valid_idx), self._base_score)
        n_features = X.shape[1]
        n_cols = (
            n_features
            if self.colsample >= 1.0
            else max(1, int(self.colsample * n_features))
        )

        self._trees = []
        best_loss = np.inf
        best_round = 0
        for round_idx in range(self.n_estimators):
            prob = 1.0 / (1.0 + np.exp(-raw))
            grad = prob - target
            hess = np.maximum(prob * (1.0 - prob), 1e-12)
            if self.subsample < 1.0:
                mask = rng.random(len(target)) < self.subsample
                if mask.sum() < 2 * self.min_samples_leaf:
                    mask[:] = True
                grad = np.where(mask, grad, 0.0)
                hess = np.where(mask, hess, 1e-12)
            if n_cols < n_features:
                features = np.sort(
                    rng.choice(n_features, size=n_cols, replace=False)
                )
            else:
                features = np.arange(n_features)
            tree = _HistRegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
                features=features,
                rng=rng,
                stride=self.n_bins,
            ).fit(binned, grad, hess)
            self._trees.append(tree)
            raw += self.learning_rate * tree.predict(binned)

            if len(valid_idx) > 0:
                raw_valid += self.learning_rate * tree.predict(
                    binned_all[valid_idx]
                )
                p = 1.0 / (1.0 + np.exp(-raw_valid))
                eps = 1e-12
                yv = encoded[valid_idx]
                loss = float(
                    -np.mean(yv * np.log(p + eps) + (1 - yv) * np.log(1 - p + eps))
                )
                if loss < best_loss - 1e-6:
                    best_loss = loss
                    best_round = round_idx
                elif round_idx - best_round >= self.early_stopping_rounds:
                    self._trees = self._trees[: best_round + 1]
                    break
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        binned = self._mapper.transform(X)
        raw = np.full(len(X), self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(binned)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        if len(self.classes_) == 1:
            return np.ones((len(X), 1))
        p1 = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.column_stack([1.0 - p1, p1])

    @property
    def n_trees_(self) -> int:
        """Number of boosting rounds actually kept after early stopping."""
        check_is_fitted(self)
        return len(self._trees)
