"""Classification metrics.

F1 is the paper's headline metric (always reported in percent there; these
functions return fractions in [0, 1] and the experiment tables multiply by
100). All binary metrics treat label ``1`` as the positive (match) class,
matching EM convention.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "log_loss",
    "roc_auc_score",
    "precision_recall_curve",
    "best_f1_threshold",
]


def _as_binary(y: np.ndarray) -> np.ndarray:
    y = np.asarray(y)
    unexpected = set(np.unique(y)) - {0, 1}
    if unexpected:
        raise ValueError(f"binary metrics expect labels {{0,1}}, got {unexpected}")
    return y.astype(np.int64)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[tn, fp], [fn, tp]]``."""
    y_true = _as_binary(y_true)
    y_pred = _as_binary(y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return np.array([[tn, fp], [fn, tp]])


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fp); 0.0 when nothing was predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fp = matrix[1, 1], matrix[0, 1]
    if tp + fp == 0:
        return 0.0
    return tp / (tp + fp)


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fn); 0.0 when there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fn = matrix[1, 1], matrix[1, 0]
    if tp + fn == 0:
        return 0.0
    return tp / (tp + fn)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall (the paper's metric)."""
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def log_loss(y_true: np.ndarray, proba: np.ndarray, eps: float = 1e-12) -> float:
    """Binary cross-entropy; ``proba`` is P(class 1), shape (n,) or (n, 2)."""
    y_true = _as_binary(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim == 2:
        proba = proba[:, 1]
    proba = np.clip(proba, eps, 1.0 - eps)
    return float(
        -np.mean(y_true * np.log(proba) + (1 - y_true) * np.log(1 - proba))
    )


def roc_auc_score(y_true: np.ndarray, proba: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged)."""
    y_true = _as_binary(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim == 2:
        proba = proba[:, 1]
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(proba, kind="mergesort")
    sorted_scores = proba[order]
    ranks = np.empty(len(proba), dtype=np.float64)
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = float(ranks[y_true == 1].sum())
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def precision_recall_curve(
    y_true: np.ndarray, proba: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns ``(precision, recall, thresholds)`` with entries ordered by
    decreasing threshold.
    """
    y_true = _as_binary(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim == 2:
        proba = proba[:, 1]
    order = np.argsort(-proba, kind="mergesort")
    sorted_true = y_true[order]
    sorted_scores = proba[order]
    distinct = np.append(np.flatnonzero(np.diff(sorted_scores)), len(proba) - 1)
    tp_cum = np.cumsum(sorted_true)
    tp = tp_cum[distinct].astype(np.float64)
    n_pos = max(1, int(y_true.sum()))
    precisions = tp / (distinct + 1)
    recalls = tp / n_pos
    thresholds = sorted_scores[distinct]
    return precisions, recalls, thresholds


def best_f1_threshold(y_true: np.ndarray, proba: np.ndarray) -> tuple[float, float]:
    """Threshold on P(match) maximizing F1, and that F1.

    EM predictions are heavily imbalanced, so the 0.5 default is rarely
    optimal; the AutoML systems tune this on the validation split exactly
    as the paper's systems tune their decision threshold.
    """
    precisions, recalls, thresholds = precision_recall_curve(y_true, proba)
    denom = precisions + recalls
    f1s = np.where(denom > 0, 2 * precisions * recalls / np.maximum(denom, 1e-12), 0.0)
    best = int(np.argmax(f1s))
    return float(thresholds[best]), float(f1s[best])
