"""Feature preprocessing: imputation and scaling.

The AutoML pipelines compose one imputer and optionally one scaler in
front of each model, mirroring AutoSklearn's fixed data-preprocessing
stage.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["SimpleImputer", "StandardScaler", "MinMaxScaler", "Pipeline"]


class SimpleImputer:
    """Replace NaNs column-wise with the mean, median, or a constant."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0) -> None:
        if strategy not in ("mean", "median", "constant"):
            raise ValueError(f"unknown imputation strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X: np.ndarray) -> "SimpleImputer":
        X = np.asarray(X, dtype=np.float64)
        import warnings

        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], self.fill_value)
        elif self.strategy == "mean":
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                self.statistics_ = np.nanmean(X, axis=0)
        else:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                self.statistics_ = np.nanmedian(X, axis=0)
        # Columns that are entirely NaN fall back to the constant.
        self.statistics_ = np.where(
            np.isnan(self.statistics_), self.fill_value, self.statistics_
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "statistics_"):
            raise NotFittedError("SimpleImputer must be fitted before transform")
        X = np.array(X, dtype=np.float64, copy=True)
        mask = np.isnan(X)
        if mask.any():
            X[mask] = np.broadcast_to(self.statistics_, X.shape)[mask]
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class StandardScaler:
    """Zero-mean unit-variance scaling (constant columns left at zero)."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler must be fitted before transform")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Rescale each column to [0, 1] (constant columns map to 0)."""

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.span_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "min_"):
            raise NotFittedError("MinMaxScaler must be fitted before transform")
        return (np.asarray(X, dtype=np.float64) - self.min_) / self.span_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class Pipeline:
    """Sequential transformers ending in a classifier.

    A deliberately small subset of the scikit-learn pipeline: every step
    but the last must expose ``fit_transform`` / ``transform``; the last
    must be an estimator with ``fit`` / ``predict_proba``.
    """

    def __init__(self, steps: list[tuple[str, object]]) -> None:
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        self.steps = steps

    @property
    def final_estimator(self):
        return self.steps[-1][1]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Pipeline":
        for _name, transformer in self.steps[:-1]:
            X = transformer.fit_transform(X)
        self.final_estimator.fit(X, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        for _name, transformer in self.steps[:-1]:
            X = transformer.transform(X)
        return X

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.final_estimator.predict_proba(self._transform(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.final_estimator.predict(self._transform(X))

    @property
    def classes_(self) -> np.ndarray:
        return self.final_estimator.classes_
