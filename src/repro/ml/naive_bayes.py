"""Gaussian naive Bayes (a cheap member of the AutoSklearn-style zoo)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Estimator, check_is_fitted, check_Xy

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes(Estimator):
    """Per-class independent Gaussians with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing <= 0:
            raise ValueError(f"var_smoothing must be positive, got {var_smoothing}")
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X, y = check_Xy(X, y)
        if np.isnan(X).any():
            raise ValueError("GaussianNaiveBayes does not accept NaNs; impute first")
        encoded = self._store_classes(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.priors_ = np.zeros(n_classes)
        global_var = X.var(axis=0).max() if len(X) else 1.0
        smoothing = self.var_smoothing * max(global_var, 1e-12)
        for cls in range(n_classes):
            rows = X[encoded == cls]
            self.priors_[cls] = len(rows) / len(X)
            if len(rows) == 0:
                self.var_[cls] = smoothing
                continue
            self.theta_[cls] = rows.mean(axis=0)
            self.var_[cls] = rows.var(axis=0) + smoothing
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self)
        X, _ = check_Xy(X)
        log_probs = np.zeros((len(X), len(self.classes_)))
        for cls in range(len(self.classes_)):
            prior = max(self.priors_[cls], 1e-12)
            diff = X - self.theta_[cls]
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[cls]) + diff**2 / self.var_[cls],
                axis=1,
            )
            log_probs[:, cls] = np.log(prior) + log_likelihood
        log_probs -= log_probs.max(axis=1, keepdims=True)
        probs = np.exp(log_probs)
        return probs / probs.sum(axis=1, keepdims=True)
