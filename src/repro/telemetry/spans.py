"""Hierarchical wall-time spans.

A span is one timed interval with a name, structured attributes, and a
parent — the innermost span open on the same thread when it started.
The public entry points are :func:`span` (context manager) and
:func:`traced` (decorator); both are no-ops when telemetry is disabled.

Span nesting is tracked per thread on the recorder's thread-local
stack, so the E2E trace of a run is a forest: one root per top-level
operation (e.g. ``runner.run_adapted``), with adapter stages and AutoML
fits as descendants.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable

# NOTE: this module must not import repro.telemetry.recorder at module
# scope — recorder.py imports SpanHandle from here, and the runtime
# lookup of the active recorder is deferred to call time instead.
# Annotations naming TelemetryRecorder are strings (PEP 563) on purpose.

__all__ = ["Span", "SpanHandle", "span", "traced", "wallclock"]


def wallclock() -> float:
    """Monotonic seconds for duration measurement — the sanctioned clock.

    Library code on the deterministic-core path must not read
    ``time.perf_counter`` directly (rule DET001 flags it): ad-hoc clock
    reads are exactly how wall time leaks into places a replay cannot
    reproduce. Durations measured through this single chokepoint are
    observability-only by construction — they feed ``wall_seconds``
    telemetry fields, never results.
    """
    return time.perf_counter()


@dataclass
class Span:
    """One completed timed interval of the trace."""

    name: str
    span_id: int
    parent_id: int | None
    start: float  # Seconds since the recorder's t0.
    end: float
    attributes: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attributes,
            "error": self.error,
        }


class SpanHandle:
    """Context manager for one live span.

    Created by :meth:`TelemetryRecorder.start_span`; on ``__enter__`` it
    claims an id, snapshots its parent from the thread-local stack, and
    pushes itself; on ``__exit__`` it pops, stamps the end time (and the
    exception type, if one is propagating), and hands the finished
    :class:`Span` to the recorder.
    """

    def __init__(
        self, recorder: "TelemetryRecorder", name: str, attributes: dict
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attributes = dict(attributes)
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._start = 0.0

    def set(self, **attributes) -> "SpanHandle":
        """Attach (or overwrite) structured attributes on the open span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "SpanHandle":
        recorder = self._recorder
        self.span_id = recorder.allocate_id()
        stack = recorder._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._start = time.perf_counter() - recorder.t0
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        recorder = self._recorder
        end = time.perf_counter() - recorder.t0
        stack = recorder._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - malformed nesting
            stack.remove(self)
        recorder.finish_span(
            Span(
                name=self.name,
                span_id=self.span_id if self.span_id is not None else -1,
                parent_id=self.parent_id,
                start=self._start,
                end=end,
                attributes=self.attributes,
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing stand-in returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


def span(name: str, **attributes):
    """Open a span under the active recorder, or do nothing when off::

        with telemetry.span("adapter.embed", position=i) as sp:
            ...
            sp.set(rows=len(out))
    """
    from repro.telemetry import recorder as _recorder

    rec = _recorder.active()
    if rec is None:
        return NULL_SPAN
    return rec.start_span(name, attributes)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span`; the span name defaults to the
    function's qualified name. The disabled path is a single ``None``
    check before delegating to the wrapped function.
    """

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.telemetry import recorder as _recorder

            rec = _recorder.active()
            if rec is None:
                return fn(*args, **kwargs)
            with rec.start_span(label, {}):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
