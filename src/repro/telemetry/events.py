"""Structured events — above all, the AutoML search-trial ledger.

The paper's budget experiments are defined by *which candidates the
search got to try* under 1h/6h simulated budgets; the trial ledger makes
that first-class: one :class:`TrialEvent` per candidate configuration
the search considered, whether it trained (``accepted``) or was turned
away (budget exhausted, ``max_models`` cap). Generic :class:`Event`
covers everything else worth a timestamped record without a duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Event", "TrialEvent"]


@dataclass
class Event:
    """A structured point-in-time occurrence."""

    name: str
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": "event", "name": self.name, "attrs": self.attributes}


@dataclass
class TrialEvent(Event):
    """One AutoML candidate evaluation, accepted or rejected.

    ``hours`` is the simulated time charged for an accepted trial, or
    the cost the rejected candidate *would have* needed; ``valid_f1`` is
    ``None`` for rejected trials (the model never trained).
    """

    name: str = "trial"
    system: str = ""
    family: str = ""
    config: str = ""
    hours: float = 0.0
    valid_f1: float | None = None
    accepted: bool = True
    reason: str = ""  # "" | "budget-exhausted" | "max-models"

    def to_dict(self) -> dict:
        return {
            "kind": "event",
            "name": "trial",
            "attrs": {
                "system": self.system,
                "family": self.family,
                "config": self.config,
                "hours": self.hours,
                "valid_f1": self.valid_f1,
                "accepted": self.accepted,
                "reason": self.reason,
                **self.attributes,
            },
        }
