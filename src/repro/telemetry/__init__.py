"""Observability for the EM reproduction: ``repro.telemetry``.

A stdlib-only instrumentation substrate with three signal kinds:

* **spans** — hierarchical wall-time intervals (:func:`span` context
  manager, :func:`traced` decorator) forming the trace tree of a run:
  adapter tokenize/embed/combine stages, AutoML fits, experiment-runner
  cells;
* **metrics** — named counters, gauges, and fixed-bucket histograms:
  cache hits/misses at every cache layer, candidate-model counts,
  simulated-budget charges;
* **events** — the AutoML search-trial ledger (:func:`trial`): every
  candidate the search considered with family, hyper-params, simulated
  hours, validation F1, and accepted/rejected.

Telemetry is **off by default** and free when off: each entry point
checks the active recorder once and returns a shared no-op. Turn it on
around any workload::

    from repro import telemetry
    from repro.telemetry import render_text, snapshot

    with telemetry.recording() as rec:
        pipeline.fit(splits.train, splits.valid)
    print(render_text(snapshot(rec)))

or from the CLI: ``repro-em trace --dataset S-DA`` /
``repro-em table 2 --telemetry json``. Traces export as JSON lines
validated by ``docs/trace_schema.json``. See ``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.events import Event, TrialEvent
from repro.telemetry.export import (
    read_jsonl,
    render_text,
    snapshot,
    write_jsonl,
)
from repro.telemetry.metrics import (
    BUDGET_HOURS_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
)
from repro.telemetry.metrics import NULL_INSTRUMENT as _NULL_INSTRUMENT
from repro.telemetry.profiling import MemoryProfile, memory_profile, peak_rss_kb
from repro.telemetry.recorder import (
    TelemetryRecorder,
    active,
    disable,
    enable,
    recording,
)
from repro.telemetry.schema import TRACE_SCHEMA, validate_instance, validate_trace
from repro.telemetry.spans import Span, span, traced, wallclock
from repro.telemetry.stitch import graft_snapshot

__all__ = [
    "BUDGET_HOURS_BUCKETS",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MemoryProfile",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "Span",
    "TRACE_SCHEMA",
    "TelemetryRecorder",
    "TrialEvent",
    "active",
    "counter",
    "disable",
    "enable",
    "event",
    "gauge",
    "graft_snapshot",
    "histogram",
    "memory_profile",
    "peak_rss_kb",
    "percentile_from_buckets",
    "read_jsonl",
    "recording",
    "render_text",
    "snapshot",
    "span",
    "traced",
    "trial",
    "validate_instance",
    "validate_trace",
    "wallclock",
    "write_jsonl",
]


def counter(name: str):
    """The named counter of the active recorder, or a no-op when off."""
    rec = active()
    if rec is None:
        return _NULL_INSTRUMENT
    return rec.metrics.counter(name)


def gauge(name: str):
    """The named gauge of the active recorder, or a no-op when off."""
    rec = active()
    if rec is None:
        return _NULL_INSTRUMENT
    return rec.metrics.gauge(name)


def histogram(name: str, bounds: tuple[float, ...] = SECONDS_BUCKETS):
    """The named histogram of the active recorder, or a no-op when off."""
    rec = active()
    if rec is None:
        return _NULL_INSTRUMENT
    return rec.metrics.histogram(name, bounds)


def event(name: str, **attributes) -> None:
    """Record a structured point-in-time event (no-op when off)."""
    rec = active()
    if rec is not None:
        rec.record_event(Event(name, attributes))


def trial(
    system: str,
    family: str,
    config: str,
    hours: float,
    valid_f1: float | None,
    accepted: bool,
    reason: str = "",
) -> None:
    """Append one AutoML candidate to the search-trial ledger."""
    rec = active()
    if rec is not None:
        rec.record_event(
            TrialEvent(
                system=system,
                family=family,
                config=config,
                hours=hours,
                valid_f1=valid_f1,
                accepted=accepted,
                reason=reason,
            )
        )
