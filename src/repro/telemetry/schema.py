"""The trace-line JSON schema and a stdlib validator for it.

Every line of a ``--telemetry json`` trace must match
:data:`TRACE_SCHEMA` — the same schema is checked in at
``docs/trace_schema.json`` (a sync test keeps the two identical) so CI
and external tooling can validate traces without importing this
package.

The validator implements exactly the Draft-7 subset the repo's schemas
use — ``type``, ``properties``, ``required``, ``additionalProperties``
(boolean or schema-valued), ``items``, ``enum``, ``oneOf``, ``const``,
``minimum`` — rather than depending on the ``jsonschema`` package (the
repo is stdlib+numpy only). ``docs/bench_schema.json``
(:mod:`repro.bench.schema`) is validated with the same subset.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

__all__ = ["TRACE_SCHEMA", "validate_instance", "validate_trace"]

_ATTRS = {"type": "object"}

_META_LINE = {
    "type": "object",
    "properties": {
        "kind": {"const": "meta"},
        "version": {"type": "integer", "minimum": 1},
        "created_unix": {"type": "number"},
        "n_spans": {"type": "integer", "minimum": 0},
        "n_events": {"type": "integer", "minimum": 0},
    },
    "required": ["kind", "version"],
    "additionalProperties": False,
}

_SPAN_LINE = {
    "type": "object",
    "properties": {
        "kind": {"const": "span"},
        "id": {"type": "integer", "minimum": 0},
        "parent": {"type": ["integer", "null"]},
        "name": {"type": "string"},
        "start": {"type": "number", "minimum": 0},
        "end": {"type": "number", "minimum": 0},
        "attrs": _ATTRS,
        "error": {"type": ["string", "null"]},
    },
    "required": ["kind", "id", "parent", "name", "start", "end", "attrs"],
    "additionalProperties": False,
}

_COUNTER_OR_GAUGE_LINE = {
    "type": "object",
    "properties": {
        "kind": {"const": "metric"},
        "type": {"enum": ["counter", "gauge"]},
        "name": {"type": "string"},
        "value": {"type": "number"},
    },
    "required": ["kind", "type", "name", "value"],
    "additionalProperties": False,
}

_HISTOGRAM_LINE = {
    "type": "object",
    "properties": {
        "kind": {"const": "metric"},
        "type": {"const": "histogram"},
        "name": {"type": "string"},
        "bounds": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer", "minimum": 0}},
        "count": {"type": "integer", "minimum": 0},
        "sum": {"type": "number"},
    },
    "required": ["kind", "type", "name", "bounds", "counts", "count", "sum"],
    "additionalProperties": False,
}

_EVENT_LINE = {
    "type": "object",
    "properties": {
        "kind": {"const": "event"},
        "name": {"type": "string"},
        "attrs": _ATTRS,
    },
    "required": ["kind", "name", "attrs"],
    "additionalProperties": False,
}

#: One line of a JSONL trace (see ``docs/trace_schema.json``).
TRACE_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.telemetry trace line",
    "description": (
        "One line of the JSON-lines trace emitted by repro.telemetry "
        "(repro-em ... --telemetry json): a meta header, a span, a "
        "metric instrument, or a structured event."
    ),
    "oneOf": [
        _META_LINE,
        _SPAN_LINE,
        _COUNTER_OR_GAUGE_LINE,
        _HISTOGRAM_LINE,
        _EVENT_LINE,
    ],
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(instance: object, schema: dict, path: str, errors: list[str]) -> None:
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
        return
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']}")
        return
    declared = schema.get("type")
    if declared is not None:
        allowed = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](instance) for t in allowed):
            errors.append(
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            )
            return
    if "oneOf" in schema:
        matches = 0
        branch_errors: list[list[str]] = []
        for branch in schema["oneOf"]:
            attempt: list[str] = []
            _check(instance, branch, path, attempt)
            if not attempt:
                matches += 1
            branch_errors.append(attempt)
        if matches != 1:
            detail = "; ".join(
                errs[0] for errs in branch_errors if errs
            )
            errors.append(
                f"{path}: matched {matches} of {len(schema['oneOf'])} "
                f"oneOf branches ({detail})"
            )
        return
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for name, value in instance.items():
            if name in properties:
                _check(value, properties[name], f"{path}.{name}", errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, dict):
                _check(value, additional, f"{path}.{name}", errors)
    elif isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            _check(item, schema["items"], f"{path}[{index}]", errors)
    if (
        "minimum" in schema
        and isinstance(instance, (int, float))
        and not isinstance(instance, bool)
        and instance < schema["minimum"]
    ):
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")


def validate_instance(instance: object, schema: dict | None = None) -> list[str]:
    """Validation errors of one parsed line; empty means valid."""
    errors: list[str] = []
    _check(instance, schema if schema is not None else TRACE_SCHEMA, "$", errors)
    return errors


def validate_trace(source: str | Path | IO[str]) -> list[str]:
    """Validate every line of a JSONL trace file against the schema.

    Returns a list of ``line N: ...`` error strings — empty for a valid
    trace. Structural requirements beyond per-line shape: exactly one
    ``meta`` line, and it must come first.
    """
    text = source.read() if hasattr(source, "read") else Path(source).read_text(
        encoding="utf-8"
    )
    errors: list[str] = []
    meta_lines: list[int] = []
    first_kind: str | None = None
    for number, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            instance = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: invalid JSON ({exc.msg})")
            continue
        if first_kind is None and isinstance(instance, dict):
            first_kind = str(instance.get("kind"))
        if isinstance(instance, dict) and instance.get("kind") == "meta":
            meta_lines.append(number)
        for error in validate_instance(instance):
            errors.append(f"line {number}: {error}")
    if not meta_lines:
        errors.append("trace has no meta line")
    elif len(meta_lines) > 1:
        errors.append(f"trace has {len(meta_lines)} meta lines: {meta_lines}")
    elif first_kind != "meta":
        errors.append("the meta line must be the first line of the trace")
    return errors
