"""Stitching worker traces into one span tree.

The parallel experiment executor runs each grid cell in its own process
with its own :class:`~repro.telemetry.recorder.TelemetryRecorder`; the
finished snapshot (plain dicts, see :func:`repro.telemetry.snapshot`)
ships back over the result pipe. :func:`graft_snapshot` attaches such a
snapshot to the parent recorder as one subtree:

* a synthetic **root span** is created under the currently open span of
  the calling thread (the executor's ``parallel.run`` span), carrying
  the cell's identity as attributes;
* every worker span is **re-identified** from the parent recorder's id
  counter (old ids are remapped, parenthood is preserved, worker roots
  hang off the synthetic root) and **re-based in time** so the subtree
  ends at the moment of grafting;
* worker **metrics merge** into the parent registry — counters add,
  gauges last-write-wins, histograms add bucket-by-bucket (bounds are
  fixed at creation, so same-name histograms always line up);
* worker **events** append in emission order, keeping the AutoML trial
  ledger complete across processes.

Grafting happens cell-by-cell in canonical grid order, so the merged
trace is deterministic in structure (ids, parenthood, event order) even
though workers finish in arbitrary order.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.telemetry.events import Event, TrialEvent
from repro.telemetry.spans import Span

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.telemetry.recorder import TelemetryRecorder

__all__ = ["graft_snapshot"]


def _merge_metrics(recorder: "TelemetryRecorder", metrics: list[dict]) -> None:
    for metric in metrics:
        name = metric.get("name", "?")
        metric_type = metric.get("type")
        if metric_type == "counter":
            recorder.metrics.counter(name).inc(float(metric.get("value", 0.0)))
        elif metric_type == "gauge":
            recorder.metrics.gauge(name).set(float(metric.get("value", 0.0)))
        elif metric_type == "histogram":
            bounds = tuple(float(b) for b in metric.get("bounds", ()))
            histogram = recorder.metrics.histogram(name, bounds)
            counts = metric.get("counts", [])
            for slot, count in enumerate(counts[: len(histogram.counts)]):
                histogram.counts[slot] += int(count)
            histogram.total += int(metric.get("count", 0))
            histogram.sum += float(metric.get("sum", 0.0))


def _revive_event(line: dict) -> Event:
    attrs = dict(line.get("attrs", {}))
    if line.get("name") == "trial":
        known = {
            key: attrs.pop(key)
            for key in (
                "system", "family", "config", "hours",
                "valid_f1", "accepted", "reason",
            )
            if key in attrs
        }
        return TrialEvent(attributes=attrs, **known)
    return Event(name=line.get("name", "?"), attributes=attrs)


def graft_snapshot(
    recorder: "TelemetryRecorder",
    trace: dict,
    name: str = "parallel.cell",
    **attributes,
) -> int:
    """Merge one worker trace snapshot into ``recorder``; returns the id
    of the synthetic root span the worker's spans were attached to.
    """
    now = time.perf_counter() - recorder.t0
    worker_spans = trace.get("spans", [])
    duration = max((s.get("end", 0.0) for s in worker_spans), default=0.0)
    base = now - duration

    parent = recorder.current_span()
    root_id = recorder.allocate_id()

    # First pass: give every worker span a parent-recorder id, in worker
    # allocation order so the remapping is deterministic.
    id_map: dict[int, int] = {}
    for old_id in sorted(s.get("id", -1) for s in worker_spans):
        id_map[old_id] = recorder.allocate_id()

    recorder.finish_span(
        Span(
            name=name,
            span_id=root_id,
            parent_id=parent.span_id if parent is not None else None,
            start=base,
            end=now,
            attributes=dict(attributes),
        )
    )
    for line in worker_spans:
        old_parent = line.get("parent")
        recorder.finish_span(
            Span(
                name=line.get("name", "?"),
                span_id=id_map[line.get("id", -1)],
                parent_id=(
                    root_id if old_parent is None else id_map.get(old_parent, root_id)
                ),
                start=base + line.get("start", 0.0),
                end=base + line.get("end", 0.0),
                attributes=dict(line.get("attrs", {})),
                error=line.get("error"),
            )
        )

    _merge_metrics(recorder, trace.get("metrics", []))
    for line in trace.get("events", []):
        recorder.record_event(_revive_event(line))
    return root_id
