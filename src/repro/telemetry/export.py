"""Trace exporters: JSON-lines serialization and the text report.

A trace is exported as one JSON object per line (easy to stream, diff,
and validate line-by-line): a ``meta`` header, then every completed
span, every metric instrument, and every event. :func:`snapshot` turns
a live recorder into that plain-dict form; :func:`read_jsonl` loads one
back, so the text renderer works identically on a live run and on a
file produced by ``--telemetry json``.

The text report has three sections:

* the **span tree** — indentation mirrors parenthood, durations on
  every node;
* **per-stage rollups** — total/mean wall time aggregated by span name,
  slowest first (the "where does featurization time go" view);
* the **trial ledger** — one row per AutoML candidate with family,
  hyper-params, simulated hours, validation F1, and accept/reject, plus
  the metric instruments (cache hit/miss counters, budget histogram).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.telemetry.recorder import TelemetryRecorder

__all__ = ["snapshot", "write_jsonl", "read_jsonl", "render_text"]

#: Version stamped into every trace's meta line; bump on shape changes
#: together with ``repro.telemetry.schema.TRACE_SCHEMA``.
TRACE_VERSION = 1


def snapshot(recorder: "TelemetryRecorder") -> dict:
    """A live recorder reduced to plain dicts (the JSONL line shapes)."""
    return {
        "meta": {
            "kind": "meta",
            "version": TRACE_VERSION,
            "created_unix": time.time(),
            "n_spans": len(recorder.spans),
            "n_events": len(recorder.events),
        },
        "spans": [s.to_dict() for s in recorder.spans],
        "metrics": recorder.metrics.to_dicts(),
        "events": [e.to_dict() for e in recorder.events],
    }


def write_jsonl(trace: dict, target: str | Path | IO[str]) -> None:
    """Serialize a :func:`snapshot` as JSON lines to a path or stream."""
    lines = [trace["meta"], *trace["spans"], *trace["metrics"], *trace["events"]]
    if hasattr(target, "write"):
        for line in lines:
            target.write(json.dumps(line, sort_keys=True) + "\n")
        return
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True) + "\n")


def read_jsonl(source: str | Path | IO[str]) -> dict:
    """Parse a JSON-lines trace back into the :func:`snapshot` shape.

    Raises :class:`ValueError` on malformed JSON *inside* the file;
    unknown ``kind`` values are preserved under ``"extra"`` so newer
    traces still render. A writer killed mid-:func:`write_jsonl` leaves
    exactly one partially-written final line — that single truncated
    trailing record is tolerated (dropped) and surfaced as
    ``trace["truncated"] = True`` so callers can report the loss.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text(encoding="utf-8")
    trace: dict = {
        "meta": {},
        "spans": [],
        "metrics": [],
        "events": [],
        "extra": [],
        "truncated": False,
    }
    numbered = [
        (number, raw)
        for number, raw in enumerate(text.splitlines(), start=1)
        if raw.strip()
    ]
    for position, (number, raw) in enumerate(numbered):
        try:
            line = json.loads(raw)
        except json.JSONDecodeError as exc:
            if position == len(numbered) - 1:
                trace["truncated"] = True
                break
            raise ValueError(f"trace line {number} is not valid JSON: {exc}") from None
        kind = line.get("kind") if isinstance(line, dict) else None
        if kind == "meta":
            trace["meta"] = line
        elif kind == "span":
            trace["spans"].append(line)
        elif kind == "metric":
            trace["metrics"].append(line)
        elif kind == "event":
            trace["events"].append(line)
        else:
            trace["extra"].append(line)
    return trace


# ------------------------------------------------------------- rendering


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def _render_span_tree(spans: list[dict]) -> list[str]:
    by_parent: dict[int | None, list[dict]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent"), []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.get("start", 0.0), s.get("id", 0)))

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for span in by_parent.get(parent, []):
            duration = span.get("end", 0.0) - span.get("start", 0.0)
            error = f"  !{span['error']}" if span.get("error") else ""
            lines.append(
                f"{'  ' * depth}{span.get('name', '?')}"
                f"  {duration * 1000.0:.1f}ms"
                f"{_format_attrs(span.get('attrs', {}))}{error}"
            )
            walk(span.get("id"), depth + 1)

    walk(None, 0)
    # Orphans (parent id never completed, e.g. a crashed run) still show.
    known = {span.get("id") for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in known:
            walk(parent, 1)
    return lines


def _render_rollups(spans: list[dict]) -> list[str]:
    totals: dict[str, list[float]] = {}
    for span in spans:
        duration = span.get("end", 0.0) - span.get("start", 0.0)
        totals.setdefault(span.get("name", "?"), []).append(duration)
    lines = [f"{'stage':<28} {'count':>5} {'total':>10} {'mean':>10}"]
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        durations = totals[name]
        total = sum(durations)
        lines.append(
            f"{name:<28} {len(durations):>5} {total * 1000.0:>8.1f}ms "
            f"{total / len(durations) * 1000.0:>8.1f}ms"
        )
    return lines


def _render_metrics(metrics: list[dict]) -> list[str]:
    from repro.telemetry.metrics import percentile_from_buckets

    lines: list[str] = []
    for metric in metrics:
        name = metric.get("name", "?")
        metric_type = metric.get("type")
        if metric_type == "histogram":
            count = metric.get("count", 0)
            total = metric.get("sum", 0.0)
            mean = total / count if count else 0.0
            bounds = metric.get("bounds", [])
            counts = metric.get("counts", [])
            quantiles = {
                f"p{q}": percentile_from_buckets(bounds, counts, q)
                for q in (50, 90, 99)
            }
            quantile_text = " ".join(
                f"{label}<={value:.4g}" for label, value in quantiles.items()
            )
            lines.append(
                f"{name:<36} histogram  n={count} sum={total:.4g} "
                f"mean={mean:.4g} {quantile_text}"
            )
        else:
            lines.append(
                f"{name:<36} {metric_type:<9}  {metric.get('value', 0)}"
            )
    return lines


def _render_trials(events: list[dict]) -> list[str]:
    trials = [e for e in events if e.get("name") == "trial"]
    if not trials:
        return ["(no AutoML trials recorded)"]
    lines = [
        f"{'#':>3} {'system':<12} {'family':<14} {'sim-h':>8} "
        f"{'valid F1':>9} {'status':<18} config"
    ]
    accepted = 0
    charged = 0.0
    for index, trial in enumerate(trials, start=1):
        attrs = trial.get("attrs", {})
        is_accepted = bool(attrs.get("accepted"))
        accepted += is_accepted
        hours = float(attrs.get("hours") or 0.0)
        if is_accepted:
            charged += hours
        f1 = attrs.get("valid_f1")
        status = "accepted" if is_accepted else f"rejected:{attrs.get('reason', '?')}"
        lines.append(
            f"{index:>3} {str(attrs.get('system', '?')):<12} "
            f"{str(attrs.get('family', '?')):<14} {hours:>8.4f} "
            f"{'-' if f1 is None else format(float(f1), '.4f'):>9} "
            f"{status:<18} {attrs.get('config', '')}"
        )
    lines.append(
        f"    {accepted}/{len(trials)} trials accepted, "
        f"{charged:.4f} simulated hours charged"
    )
    return lines


def render_text(trace: dict) -> str:
    """The human-readable report of one trace snapshot."""
    sections = []
    spans = trace.get("spans", [])
    if spans:
        sections.append("== span tree ==\n" + "\n".join(_render_span_tree(spans)))
        sections.append("== per-stage rollup ==\n" + "\n".join(_render_rollups(spans)))
    else:
        sections.append("== span tree ==\n(no spans recorded)")
    sections.append("== trial ledger ==\n" + "\n".join(_render_trials(trace.get("events", []))))
    metrics = trace.get("metrics", [])
    if metrics:
        sections.append("== metrics ==\n" + "\n".join(_render_metrics(metrics)))
    return "\n\n".join(sections)
