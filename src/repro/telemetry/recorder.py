"""The telemetry recorder and its process-global activation switch.

Telemetry is **off by default**: :func:`active` returns ``None`` and
every instrumentation entry point (``telemetry.span``,
``telemetry.counter``, ``telemetry.trial`` ...) degrades to a shared
no-op object, so an uninstrumented and an instrumented run execute the
same arithmetic — the disabled cost is one module-level attribute read
plus one ``is None`` check per call site (asserted in
``benchmarks/bench_components.py``).

When enabled (:func:`enable`, or the :func:`recording` context manager),
a single :class:`TelemetryRecorder` collects three kinds of signals:

* **spans** — hierarchical wall-time intervals with structured
  attributes, kept on a thread-local stack so concurrent threads build
  independent subtrees (see :mod:`repro.telemetry.spans`);
* **metrics** — named counters, gauges, and fixed-bucket histograms
  (see :mod:`repro.telemetry.metrics`);
* **events** — the AutoML search-trial ledger and any other structured
  occurrences (see :mod:`repro.telemetry.events`).

The recorder is deliberately append-only and never samples: traces of
the scaled-down reproduction runs are small, and completeness is what
makes the trial ledger auditable against the paper's budget tables.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.events import Event, TrialEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, SpanHandle

__all__ = [
    "TelemetryRecorder",
    "active",
    "enable",
    "disable",
    "recording",
]


class TelemetryRecorder:
    """One run's worth of spans, metrics, and events.

    Span ids are assigned from a recorder-local counter under a lock, so
    ids are dense and deterministic for single-threaded runs and still
    unique under concurrency. All span timestamps are
    ``time.perf_counter()`` offsets relative to the recorder's creation
    (``t0``), which keeps traces small and diffable.
    """

    def __init__(self) -> None:
        self.t0 = time.perf_counter()
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    # -------------------------------------------------------------- spans

    def _stack(self) -> list[SpanHandle]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def start_span(self, name: str, attributes: dict) -> SpanHandle:
        """A context-manager handle; the span is recorded on exit."""
        return SpanHandle(self, name, attributes)

    def current_span(self) -> SpanHandle | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finish_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # ------------------------------------------------------------- events

    def record_event(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    @property
    def trials(self) -> list[TrialEvent]:
        """The AutoML search-trial ledger, in emission order."""
        return [e for e in self.events if isinstance(e, TrialEvent)]


_active: TelemetryRecorder | None = None


def active() -> TelemetryRecorder | None:
    """The installed recorder, or ``None`` when telemetry is off."""
    return _active


def enable(recorder: TelemetryRecorder | None = None) -> TelemetryRecorder:
    """Install (and return) a recorder; replaces any previous one."""
    global _active
    _active = recorder if recorder is not None else TelemetryRecorder()
    return _active


def disable() -> TelemetryRecorder | None:
    """Turn telemetry off; returns the recorder that was active."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def recording(
    recorder: TelemetryRecorder | None = None,
) -> Iterator[TelemetryRecorder]:
    """Enable telemetry for a ``with`` block, restoring the previous
    state (including "off") on exit::

        with telemetry.recording() as rec:
            pipeline.fit(train, valid)
        print(render_text(snapshot(rec)))
    """
    global _active
    previous = _active
    installed = enable(recorder)
    try:
        yield installed
    finally:
        _active = previous
