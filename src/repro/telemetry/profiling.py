"""Deterministic memory-profiling hooks for benchmark harnesses.

:func:`memory_profile` wraps a workload and reports two high-water
marks:

* the **tracemalloc** peak — Python-level allocation high-water, which
  is reproducible under fixed seeds (the same allocations happen in the
  same order) and therefore safe to compare against a committed
  baseline;
* the process **peak RSS** (``resource.getrusage``) — the
  operating-system view, useful context but monotone over the process
  lifetime and allocator-dependent, so baseline gates should treat it
  as informational.

The hook nests: if tracemalloc is already tracing (an outer profile or
a user session), the peak counter is reset rather than restarted, and
tracing is left running on exit.
"""

from __future__ import annotations

import sys
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["MemoryProfile", "memory_profile", "peak_rss_kb"]


def peak_rss_kb() -> float:
    """Lifetime peak resident-set size of this process, in KiB.

    Returns 0.0 on platforms without ``resource`` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return peak / 1024.0
    return float(peak)


@dataclass
class MemoryProfile:
    """High-water marks filled in when :func:`memory_profile` exits."""

    tracemalloc_peak_kb: float = 0.0
    peak_rss_kb: float = 0.0


@contextmanager
def memory_profile() -> Iterator[MemoryProfile]:
    """Measure the tracemalloc high-water of a ``with`` block::

        with memory_profile() as profile:
            run_workload()
        print(profile.tracemalloc_peak_kb)

    Tracing costs roughly constant overhead per Python-level
    allocation; numpy-dominated workloads see only the array-object
    allocations, so the distortion is small and — crucially for
    baselines — consistent between runs.
    """
    profile = MemoryProfile()
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        yield profile
    finally:
        _, peak = tracemalloc.get_traced_memory()
        if started_here:
            tracemalloc.stop()
        profile.tracemalloc_peak_kb = peak / 1024.0
        profile.peak_rss_kb = peak_rss_kb()
