"""Named instruments: counters, gauges, and fixed-bucket histograms.

Instruments are created lazily on first use and live in a
:class:`MetricsRegistry` owned by the recorder. Histogram bucket
boundaries are fixed at creation time (never derived from the observed
data), so two runs that observe the same values render byte-identical
metric lines — determinism is part of the reproduction contract.

The registry ships named-bucket presets for the signals the EM
pipeline cares about: simulated budget charges (hours, log-ish spacing
around the paper's 1h/6h budgets) and wall-clock stage durations.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from math import ceil

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BUDGET_HOURS_BUCKETS",
    "SECONDS_BUCKETS",
    "percentile_from_buckets",
]

#: Simulated-hours buckets for :meth:`SimulatedClock.charge` amounts —
#: spanning per-model costs (millihours) up to the 6h budget ceiling.
BUDGET_HOURS_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 6.0,
)

#: Wall-clock duration buckets for stage timings.
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def percentile_from_buckets(
    bounds: tuple[float, ...] | list[float],
    counts: list[int],
    q: float,
) -> float:
    """The ``q``-th percentile (``0 <= q <= 100``) of a bucketed
    distribution, as the upper bound of the bucket holding that rank.

    Bucket histograms discard exact values, so this is the standard
    conservative estimate: the smallest boundary known to be >= the
    requested fraction of observations. Observations in the overflow
    bucket clamp to the largest finite bound. An empty distribution
    reports 0.0.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = max(1, ceil(q / 100.0 * total))
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank:
            return float(bound)
    return float(bounds[-1])


class Counter:
    """A monotonically increasing total.

    ``inc`` is a read-modify-write, so concurrent callers (the serving
    daemon handles every connection on its own thread) must serialize on
    the per-instrument lock or drop increments; the lock is uncontended
    in single-threaded runs and its cost is asserted negligible in the
    ``telemetry_overhead`` bench.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {
            "kind": "metric",
            "type": "counter",
            "name": self.name,
            "value": self.value,
        }


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        # A float store is atomic in CPython, but the lock keeps the
        # contract uniform across instruments (and to_dict reads see a
        # coherent value under free-threaded builds too).
        coerced = float(value)
        with self._lock:
            self.value = coerced

    def to_dict(self) -> dict:
        return {
            "kind": "metric",
            "type": "gauge",
            "name": self.name,
            "value": self.value,
        }


class Histogram:
    """Cumulative-free bucketed distribution with fixed boundaries.

    ``counts[i]`` holds observations ``v <= bounds[i]`` (and greater
    than the previous bound); the final slot is the overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "_lock")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} needs sorted, non-empty bucket bounds"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile estimated from the bucket counts
        (see :func:`percentile_from_buckets`) — p50/p90/p99 for latency
        reporting without storing individual observations."""
        with self._lock:
            counts = list(self.counts)
        return percentile_from_buckets(self.bounds, counts, q)

    def to_dict(self) -> dict:
        with self._lock:
            counts = list(self.counts)
            total = self.total
            observed_sum = self.sum
        return {
            "kind": "metric",
            "type": "histogram",
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": counts,
            "count": total,
            "sum": observed_sum,
        }


class MetricsRegistry:
    """Get-or-create home of every named instrument of one recorder.

    Get-or-create is locked: two threads racing on a fresh name must
    receive the *same* instrument, or one of them increments a counter
    that is silently dropped from the registry.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.counters.get(name)
                if instrument is None:
                    instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.gauges.get(name)
                if instrument is None:
                    instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = SECONDS_BUCKETS
    ) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.histograms.get(name)
                if instrument is None:
                    instrument = self.histograms[name] = Histogram(name, bounds)
                    return instrument
        if instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"bucket bounds {instrument.bounds}"
            )
        return instrument

    def to_dicts(self) -> list[dict]:
        """Every instrument as one metric line, name-sorted per type."""
        lines: list[dict] = []
        for store in (self.counters, self.gauges, self.histograms):
            for name in sorted(store):
                lines.append(store[name].to_dict())
        return lines


class _NullInstrument:
    """Accepts every instrument method and records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()
