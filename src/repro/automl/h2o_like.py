"""H2OAutoML-style system: random search + super-learner stacking.

H2O AutoML trains a fixed sequence of default models, then random-search
grids over the strongest families, and finally two stacked ensembles
("BestOfFamily" and "All"). It deliberately avoids Bayesian optimization.
This class reproduces that recipe: defaults first, random search until
the budget runs low, then a logistic super learner over out-of-fold
predictions of the best model per family.
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.automl.base import AutoMLSystem
from repro.automl.resources import SimulatedClock
from repro.automl.search_space import (
    FAMILY_SPACES,
    default_configuration,
    sample_configuration,
)
from repro.exceptions import BudgetExhaustedError
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import f1_score
from repro.ml.model_selection import StratifiedKFold

__all__ = ["H2OAutoMLLike"]

_DEFAULT_ORDER = ("gbm", "random_forest", "extra_trees", "logreg", "naive_bayes")
_SEARCH_FAMILIES = ("gbm", "random_forest", "extra_trees", "logreg", "linear_svm")


class H2OAutoMLLike(AutoMLSystem):
    """Defaults, random grids, then a super-learner stacked ensemble."""

    name = "h2o"

    def __init__(
        self,
        budget_hours: float = 1.0,
        seed: int = 0,
        max_models: int = 40,
        stack_reserve: float = 0.15,
    ) -> None:
        super().__init__(budget_hours=budget_hours, seed=seed, max_models=max_models)
        self.stack_reserve = stack_reserve

    def _search(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        for family in _DEFAULT_ORDER:
            self._evaluate(
                default_configuration(family), X, y, X_valid, y_valid, clock
            )
        # Random search with a slice of budget reserved for the stacker.
        import math

        budget = self._budget_value
        reserve = 0.0 if math.isinf(budget) else budget * self.stack_reserve
        while clock.remaining_hours > reserve:
            config = sample_configuration(self._rng, families=_SEARCH_FAMILIES)
            self._evaluate(config, X, y, X_valid, y_valid, clock)

    def _build_final(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        # Best model of each family forms the super learner's base layer.
        best_per_family: dict[str, int] = {}
        for idx, entry in enumerate(self._leaderboard):
            family = entry.config.family
            if (
                family not in best_per_family
                or entry.valid_f1
                > self._leaderboard[best_per_family[family]].valid_f1
            ):
                best_per_family[family] = idx
        self._base_entries = [self._leaderboard[i] for i in best_per_family.values()]

        if len(self._base_entries) < 2:
            self._meta = None
            return
        try:
            clock.charge_model(
                "stack", len(X), len(self._base_entries), label="super learner"
            )
        except BudgetExhaustedError:
            # Graceful degradation: no stacker, best single model serves.
            faults.mark_recovered("automl.budget")
            self._meta = None
            return

        oof_columns = []
        splitter = StratifiedKFold(n_splits=4, seed=self.seed)
        for entry in self._base_entries:
            oof = np.zeros(len(y))
            for train_idx, test_idx in splitter.split(y):
                # A fresh model per fold is required: hoisting would
                # leak fitted state across CV splits.
                fold_model = entry.config.build(seed=self.seed)  # repro: noqa[PERF002]
                fold_model.fit(X[train_idx], y[train_idx])
                oof[test_idx] = fold_model.predict_proba(X[test_idx])[:, 1]
            oof_columns.append(oof)
        meta_X = np.column_stack(oof_columns)
        self._meta = LogisticRegression(C=10.0)
        self._meta.fit(meta_X, y)
        # Keep the stack only if it actually helps on validation.
        stacked_valid = self._meta.predict_proba(
            np.column_stack([e.valid_proba for e in self._base_entries])
        )[:, 1]
        stacked_f1 = f1_score(y_valid, (stacked_valid >= 0.5).astype(np.int64))
        best_single = max(e.valid_f1 for e in self._base_entries)
        if stacked_f1 < best_single:
            self._meta = None

    def _ensemble_proba(self, X: np.ndarray) -> np.ndarray:
        if getattr(self, "_meta", None) is None:
            best = max(self._leaderboard, key=lambda e: e.valid_f1)
            return best.model.predict_proba(X)[:, 1]
        columns = [e.model.predict_proba(X)[:, 1] for e in self._base_entries]
        return self._meta.predict_proba(np.column_stack(columns))[:, 1]
