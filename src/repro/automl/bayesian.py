"""Sequential model-based optimization (the AutoSklearn search engine).

A small but real SMBO loop: per model family, a Gaussian-process surrogate
with an RBF kernel over unit-cube-encoded hyper-parameters, expected
improvement as the acquisition function, and an epsilon-greedy family
selector driven by the best score observed per family.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg
from scipy.stats import norm as normal_dist

from repro.automl.search_space import FAMILY_SPACES, Configuration
from repro.exceptions import NotFittedError

__all__ = ["GaussianProcessSurrogate", "SMBOProposer"]


class GaussianProcessSurrogate:
    """Exact GP regression with an RBF kernel on [0, 1]^d points."""

    def __init__(self, length_scale: float = 0.35, noise: float = 1e-3) -> None:
        self.length_scale = length_scale
        self.noise = noise
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(A**2, axis=1)[:, None]
            - 2.0 * A @ B.T
            + np.sum(B**2, axis=1)[None, :]
        )
        return np.exp(-0.5 * np.maximum(d2, 0.0) / self.length_scale**2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessSurrogate":
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64)
        self._y_mean = float(y.mean())
        K = self._kernel(X, X) + self.noise * np.eye(len(X))
        self._chol = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), y - self._y_mean)
        self._X = X
        return self

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points."""
        if self._X is None or self._alpha is None or self._chol is None:
            raise NotFittedError("surrogate must be fitted first")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        K_star = self._kernel(X, self._X)
        mean = self._y_mean + K_star @ self._alpha
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        var = np.maximum(1.0 - np.sum(v**2, axis=0), 1e-12)
        return mean, np.sqrt(var)


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.005
) -> np.ndarray:
    """EI of maximizing beyond ``best`` (with exploration margin ``xi``)."""
    improvement = mean - best - xi
    z = improvement / np.maximum(std, 1e-12)
    return improvement * normal_dist.cdf(z) + std * normal_dist.pdf(z)


class SMBOProposer:
    """Proposes the next configuration to evaluate.

    Keeps per-family observation history; each proposal first picks a
    family (epsilon-greedy on the family's best observed score), then
    maximizes EI over a random candidate pool under that family's GP.
    Families with fewer than three observations fall back to random
    sampling — the standard SMBO bootstrap.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        families: tuple[str, ...] | None = None,
        epsilon: float = 0.25,
        pool_size: int = 64,
    ) -> None:
        self.rng = rng
        self.families = families if families is not None else tuple(FAMILY_SPACES)
        self.epsilon = epsilon
        self.pool_size = pool_size
        self._observations: dict[str, list[tuple[np.ndarray, float]]] = {
            f: [] for f in self.families
        }

    def observe(self, config: Configuration, score: float) -> None:
        """Record the outcome of one evaluation."""
        if config.family not in self._observations:
            self._observations[config.family] = []
        space = FAMILY_SPACES[config.family]
        self._observations[config.family].append(
            (space.to_unit_vector(config), score)
        )

    def _pick_family(self) -> str:
        if self.rng.random() < self.epsilon:
            return self.families[int(self.rng.integers(0, len(self.families)))]
        best_scores = {}
        for family in self.families:
            obs = self._observations.get(family, [])
            best_scores[family] = max((s for _v, s in obs), default=-np.inf)
        if all(np.isinf(-s) for s in best_scores.values()):
            return self.families[int(self.rng.integers(0, len(self.families)))]
        return max(best_scores, key=lambda f: best_scores[f])

    def propose(self) -> Configuration:
        """The next configuration to try."""
        family = self._pick_family()
        space = FAMILY_SPACES[family]
        observations = self._observations.get(family, [])
        if len(observations) < 3:
            return space.sample(self.rng)

        X = np.vstack([v for v, _s in observations])
        y = np.array([s for _v, s in observations])
        surrogate = GaussianProcessSurrogate().fit(X, y)

        candidates = [space.sample(self.rng) for _ in range(self.pool_size)]
        encoded = np.vstack([space.to_unit_vector(c) for c in candidates])
        mean, std = surrogate.predict(encoded)
        ei = expected_improvement(mean, std, best=float(y.max()))
        return candidates[int(np.argmax(ei))]
