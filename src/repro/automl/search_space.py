"""Hyper-parameter search space shared by the AutoML systems.

Each model family declares a :class:`ConfigSpace`: named dimensions that
are either categorical, integer-uniform, or log-uniform floats. A
:class:`Configuration` (family + parameter dict) can be materialized into
a fitted-ready estimator pipeline and priced for the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SearchSpaceError
from repro.ml.base import Estimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import ExtraTreesClassifier, RandomForestClassifier
from repro.ml.linear import LinearSVMClassifier, LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import Pipeline, SimpleImputer, StandardScaler
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Dimension",
    "CategoricalDim",
    "IntDim",
    "FloatDim",
    "ConfigSpace",
    "Configuration",
    "FAMILY_SPACES",
    "sample_configuration",
    "default_configuration",
]


@dataclass(frozen=True)
class Dimension:
    """Base class of one hyper-parameter dimension."""

    name: str

    def sample(self, rng: np.random.Generator) -> object:  # pragma: no cover
        raise NotImplementedError

    def to_unit(self, value: object) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class CategoricalDim(Dimension):
    choices: tuple = ()

    def sample(self, rng: np.random.Generator) -> object:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def to_unit(self, value: object) -> float:
        try:
            return self.choices.index(value) / max(1, len(self.choices) - 1)
        except ValueError:
            raise SearchSpaceError(
                f"{value!r} not among choices of {self.name}"
            ) from None


@dataclass(frozen=True)
class IntDim(Dimension):
    low: int = 0
    high: int = 1
    log: bool = False

    def sample(self, rng: np.random.Generator) -> int:
        if self.log:
            value = np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
            return int(round(value))
        return int(rng.integers(self.low, self.high + 1))

    def to_unit(self, value: object) -> float:
        v = float(value)  # type: ignore[arg-type]
        if self.log:
            return (np.log(v) - np.log(self.low)) / max(
                1e-12, np.log(self.high) - np.log(self.low)
            )
        return (v - self.low) / max(1e-12, self.high - self.low)


@dataclass(frozen=True)
class FloatDim(Dimension):
    low: float = 0.0
    high: float = 1.0
    log: bool = False

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def to_unit(self, value: object) -> float:
        v = float(value)  # type: ignore[arg-type]
        if self.log:
            return (np.log(v) - np.log(self.low)) / max(
                1e-12, np.log(self.high) - np.log(self.low)
            )
        return (v - self.low) / max(1e-12, self.high - self.low)


@dataclass(frozen=True)
class ConfigSpace:
    """The searchable dimensions of one model family."""

    family: str
    dimensions: tuple[Dimension, ...]
    defaults: dict[str, object] = field(default_factory=dict)

    def sample(self, rng: np.random.Generator) -> "Configuration":
        params = {dim.name: dim.sample(rng) for dim in self.dimensions}
        return Configuration(self.family, params)

    def default(self) -> "Configuration":
        return Configuration(self.family, dict(self.defaults))

    def to_unit_vector(self, config: "Configuration") -> np.ndarray:
        """Encode a configuration for the surrogate model."""
        return np.array(
            [dim.to_unit(config.params[dim.name]) for dim in self.dimensions]
        )


@dataclass(frozen=True)
class Configuration:
    """One concrete candidate: model family + hyper-parameters."""

    family: str
    params: dict[str, object]

    def build(self, seed: int = 0) -> Pipeline:
        """Materialize the candidate as an imputing pipeline."""
        model = _build_model(self.family, self.params, seed)
        steps: list[tuple[str, object]] = [("impute", SimpleImputer())]
        if self.family in ("logreg", "linear_svm", "knn", "naive_bayes"):
            steps.append(("scale", StandardScaler()))
        steps.append(("model", model))
        return Pipeline(steps)

    def complexity(self) -> float:
        """Relative training cost vs the family default (for the clock)."""
        if self.family == "gbm":
            rounds = float(self.params.get("n_estimators", 200))
            depth = float(self.params.get("max_depth", 5))
            return (rounds / 200.0) * (depth / 5.0)
        if self.family in ("random_forest", "extra_trees"):
            return float(self.params.get("n_estimators", 100)) / 100.0
        if self.family in ("logreg", "linear_svm"):
            return float(self.params.get("max_iter", 200)) / 200.0
        return 1.0

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.family}({inner})"


def _build_model(family: str, params: dict[str, object], seed: int) -> Estimator:
    p = dict(params)
    if family == "logreg":
        return LogisticRegression(
            C=float(p.get("C", 1.0)),
            class_weight=p.get("class_weight", "balanced"),  # type: ignore[arg-type]
        )
    if family == "linear_svm":
        return LinearSVMClassifier(
            C=float(p.get("C", 1.0)),
            class_weight=p.get("class_weight", "balanced"),  # type: ignore[arg-type]
        )
    if family == "naive_bayes":
        return GaussianNaiveBayes(var_smoothing=float(p.get("var_smoothing", 1e-9)))
    if family == "knn":
        return KNeighborsClassifier(
            n_neighbors=int(p.get("n_neighbors", 5)),
            weights=str(p.get("weights", "uniform")),
        )
    if family == "tree":
        return DecisionTreeClassifier(
            max_depth=int(p.get("max_depth", 12)),
            min_samples_leaf=int(p.get("min_samples_leaf", 2)),
            seed=seed,
        )
    if family == "random_forest":
        return RandomForestClassifier(
            n_estimators=int(p.get("n_estimators", 60)),
            max_depth=int(p.get("max_depth", 16)),
            min_samples_leaf=int(p.get("min_samples_leaf", 1)),
            class_weight=p.get("class_weight", "balanced"),  # type: ignore[arg-type]
            seed=seed,
        )
    if family == "extra_trees":
        return ExtraTreesClassifier(
            n_estimators=int(p.get("n_estimators", 60)),
            max_depth=int(p.get("max_depth", 16)),
            min_samples_leaf=int(p.get("min_samples_leaf", 1)),
            class_weight=p.get("class_weight", "balanced"),  # type: ignore[arg-type]
            seed=seed,
        )
    if family == "gbm":
        return GradientBoostingClassifier(
            n_estimators=int(p.get("n_estimators", 200)),
            learning_rate=float(p.get("learning_rate", 0.1)),
            max_depth=int(p.get("max_depth", 5)),
            min_samples_leaf=int(p.get("min_samples_leaf", 5)),
            subsample=float(p.get("subsample", 1.0)),
            colsample=float(p.get("colsample", 1.0)),
            seed=seed,
        )
    raise SearchSpaceError(f"unknown model family {family!r}")


_CLASS_WEIGHT = CategoricalDim("class_weight", (None, "balanced"))

FAMILY_SPACES: dict[str, ConfigSpace] = {
    "logreg": ConfigSpace(
        "logreg",
        (FloatDim("C", 0.01, 100.0, log=True), _CLASS_WEIGHT),
        defaults={"C": 1.0, "class_weight": "balanced"},
    ),
    "linear_svm": ConfigSpace(
        "linear_svm",
        (FloatDim("C", 0.01, 100.0, log=True), _CLASS_WEIGHT),
        defaults={"C": 1.0, "class_weight": "balanced"},
    ),
    "naive_bayes": ConfigSpace(
        "naive_bayes",
        (FloatDim("var_smoothing", 1e-10, 1e-6, log=True),),
        defaults={"var_smoothing": 1e-9},
    ),
    "knn": ConfigSpace(
        "knn",
        (
            IntDim("n_neighbors", 3, 51, log=True),
            CategoricalDim("weights", ("uniform", "distance")),
        ),
        defaults={"n_neighbors": 5, "weights": "distance"},
    ),
    "tree": ConfigSpace(
        "tree",
        (
            IntDim("max_depth", 4, 24),
            IntDim("min_samples_leaf", 1, 20, log=True),
        ),
        defaults={"max_depth": 12, "min_samples_leaf": 2},
    ),
    "random_forest": ConfigSpace(
        "random_forest",
        (
            IntDim("n_estimators", 20, 120, log=True),
            IntDim("max_depth", 6, 24),
            IntDim("min_samples_leaf", 1, 10, log=True),
            _CLASS_WEIGHT,
        ),
        defaults={
            "n_estimators": 60,
            "max_depth": 16,
            "min_samples_leaf": 1,
            "class_weight": "balanced",
        },
    ),
    "extra_trees": ConfigSpace(
        "extra_trees",
        (
            IntDim("n_estimators", 20, 120, log=True),
            IntDim("max_depth", 6, 24),
            IntDim("min_samples_leaf", 1, 10, log=True),
            _CLASS_WEIGHT,
        ),
        defaults={
            "n_estimators": 60,
            "max_depth": 16,
            "min_samples_leaf": 1,
            "class_weight": "balanced",
        },
    ),
    "gbm": ConfigSpace(
        "gbm",
        (
            IntDim("n_estimators", 50, 400, log=True),
            FloatDim("learning_rate", 0.02, 0.3, log=True),
            IntDim("max_depth", 3, 8),
            IntDim("min_samples_leaf", 2, 20, log=True),
            FloatDim("subsample", 0.6, 1.0),
            FloatDim("colsample", 0.5, 1.0),
        ),
        defaults={
            "n_estimators": 200,
            "learning_rate": 0.1,
            "max_depth": 5,
            "min_samples_leaf": 5,
            "subsample": 1.0,
            "colsample": 1.0,
        },
    ),
}


def sample_configuration(
    rng: np.random.Generator, families: tuple[str, ...] | None = None
) -> Configuration:
    """Draw a uniform family, then a configuration from its space."""
    pool = families if families is not None else tuple(FAMILY_SPACES)
    family = pool[int(rng.integers(0, len(pool)))]
    return FAMILY_SPACES[family].sample(rng)


def default_configuration(family: str) -> Configuration:
    """The family's default configuration."""
    if family not in FAMILY_SPACES:
        raise SearchSpaceError(f"unknown model family {family!r}")
    return FAMILY_SPACES[family].default()
