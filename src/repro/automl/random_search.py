"""Random-search proposer (the H2O-style counterpart of SMBO).

Kept as its own module so the two search strategies are interchangeable
in experiments and ablations: both expose ``propose()``/``observe()``.
"""

from __future__ import annotations

import numpy as np

from repro.automl.search_space import FAMILY_SPACES, Configuration

__all__ = ["RandomSearchProposer"]


class RandomSearchProposer:
    """Uniform random proposals over (family, hyper-parameters).

    ``observe`` is a no-op — random search ignores history — but the
    method exists so random search and SMBO can be swapped in ablation
    benchmarks without touching the loop.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        families: tuple[str, ...] | None = None,
    ) -> None:
        self.rng = rng
        self.families = families if families is not None else tuple(FAMILY_SPACES)

    def observe(self, config: Configuration, score: float) -> None:
        """History is ignored by design."""

    def propose(self) -> Configuration:
        """Draw a uniform family, then a configuration from its space."""
        family = self.families[int(self.rng.integers(0, len(self.families)))]
        return FAMILY_SPACES[family].sample(self.rng)
