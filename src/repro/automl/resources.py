"""Simulated training-time accounting.

The paper's budget experiments (Tables 2 and 5) compare AutoML systems
under 1-hour and 6-hour *wall-clock* training budgets on the authors'
hardware. Re-running hours of wall clock is neither necessary nor
reproducible; what the experiments actually depend on is a consistent
resource accounting: every candidate configuration consumes budget
proportional to its real computational cost, and a larger budget lets the
search evaluate more candidates.

:class:`SimulatedClock` provides that accounting. Each model family has a
calibrated cost function of the training-set shape; charging the clock is
deterministic, so every budgeted experiment reproduces bit-for-bit. The
calibration constants were chosen so that the *relative* training times of
the three systems on the benchmark datasets land in the neighbourhood of
the paper's Table 2 (AutoSklearn saturating its budget, H2O finishing
under an hour, AutoGluon taking several hours on the large datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults, telemetry
from repro.exceptions import BudgetExhaustedError

__all__ = ["SimulatedClock", "TimeBudget", "model_cost_hours"]

#: Cost in simulated hours of training one model on one thousand rows with
#: one hundred features, per model family. Scaled linearly in rows and
#: features (quadratically for kNN distance matrices at inference).
_FAMILY_COST_PER_KROW = {
    "logreg": 0.0010,
    "linear_svm": 0.0012,
    "naive_bayes": 0.0008,
    "knn": 0.0030,
    "tree": 0.0020,
    "random_forest": 0.0070,
    "extra_trees": 0.0065,
    "gbm": 0.0080,
    "stack": 0.0100,
    "overhead": 0.0010,
}


def model_cost_hours(
    family: str,
    n_rows: int,
    n_features: int,
    complexity: float = 1.0,
) -> float:
    """Simulated hours needed to train one configuration.

    ``complexity`` scales with hyper-parameters (e.g. number of trees /
    boosting rounds relative to the family default).
    """
    base = _FAMILY_COST_PER_KROW.get(family, 0.005)
    rows_k = max(0.05, n_rows / 1000.0)
    feature_factor = max(0.2, n_features / 100.0)
    return base * rows_k * feature_factor * max(0.05, complexity)


@dataclass
class TimeBudget:
    """A budget of simulated hours; ``math.inf`` means unbounded.

    AutoGluon's default configuration has no time limit (the paper's
    Table 2 lets it run 4+ hours), so an infinite budget is legal; the
    ``max_models`` cap of the AutoML loops bounds real wall-clock instead.
    """

    hours: float

    def __post_init__(self) -> None:
        if not self.hours > 0:
            raise ValueError(f"budget must be positive, got {self.hours}")

    @property
    def is_unbounded(self) -> bool:
        import math

        return math.isinf(self.hours)


@dataclass
class SimulatedClock:
    """Consumes a :class:`TimeBudget` as models are trained.

    The AutoML loops call :meth:`charge` before each candidate evaluation;
    once the budget would be exceeded the clock raises
    :class:`BudgetExhaustedError`, which the loops treat as the stop
    signal. ``elapsed_hours`` is what the experiment tables report as
    "training time".
    """

    budget: TimeBudget
    elapsed_hours: float = 0.0
    charges: list[tuple[str, float]] = field(default_factory=list)

    @property
    def remaining_hours(self) -> float:
        return max(0.0, self.budget.hours - self.elapsed_hours)

    def can_afford(self, hours: float) -> bool:
        """Whether ``hours`` fit into the remaining budget."""
        return hours <= self.remaining_hours + 1e-12

    def charge(self, hours: float, label: str = "", force: bool = False) -> None:
        """Consume ``hours``; raise when the budget would be exceeded.

        ``force`` charges past the budget instead of raising — used for
        the very first model of a fit, which real AutoML systems always
        train even when it alone overruns the allocation.
        """
        if hours < 0:
            raise ValueError(f"cannot charge negative time: {hours}")
        # Chaos seam: a scheduled "budget" fault raises
        # BudgetExhaustedError here mid-trial, which the search loops
        # must absorb exactly like a genuine exhaustion.
        faults.checkpoint("automl.budget", label=label)
        if not force and not self.can_afford(hours):
            telemetry.counter("automl.budget.rejections").inc()
            raise BudgetExhaustedError(
                f"budget of {self.budget.hours:.2f}h exhausted "
                f"({self.elapsed_hours:.2f}h used, {hours:.3f}h requested"
                + (f" for {label}" if label else "")
                + ")"
            )
        self.elapsed_hours += hours
        self.charges.append((label, hours))
        # Mirror the ledger into telemetry: each accepted charge is one
        # observation of the budget histogram, so a trace's histogram sum
        # equals the clock's elapsed_hours.
        telemetry.histogram(
            "automl.budget.charge_hours", telemetry.BUDGET_HOURS_BUCKETS
        ).observe(hours)

    def charge_model(
        self,
        family: str,
        n_rows: int,
        n_features: int,
        complexity: float = 1.0,
        label: str = "",
        force: bool = False,
    ) -> float:
        """Charge the calibrated cost of one model; returns hours charged."""
        hours = model_cost_hours(family, n_rows, n_features, complexity)
        self.charge(hours, label or family, force=force)
        return hours
