"""Auto-Keras-style system: neural architecture search over MLPs.

Auto-Keras (Jin et al., KDD 2019) applies Bayesian optimization to neural
architecture search. The paper lists it among the AutoML systems but does
not evaluate it; this class completes the family as an extension: a GP-
guided search over the architecture space of our manual-gradient MLP
(width, depth via second-layer width, learning rate, dropout), with the
best architecture retrained and soft-ensembled over the top finalists.
"""

from __future__ import annotations

import numpy as np

from repro.automl.base import AutoMLSystem, LeaderboardEntry
from repro.automl.bayesian import GaussianProcessSurrogate, expected_improvement
from repro.automl.resources import SimulatedClock
from repro.automl.search_space import Configuration
from repro.exceptions import BudgetExhaustedError
from repro.ml.metrics import f1_score
from repro.ml.preprocessing import SimpleImputer, StandardScaler
from repro.nn.autograd import MLPClassifier

__all__ = ["AutoKerasLike"]

#: Architecture dimensions searched, each encoded to [0, 1] for the GP.
_HIDDEN_CHOICES = (16, 32, 64, 128, 192)
_LR_RANGE = (5e-4, 1e-2)
_DROPOUT_RANGE = (0.0, 0.4)
_EPOCH_CHOICES = (20, 40, 60)


class _MLPPipeline:
    """Impute + scale + MLP, with the estimator call surface."""

    def __init__(self, params: dict[str, object], seed: int) -> None:
        self._imputer = SimpleImputer()
        self._scaler = StandardScaler()
        self._mlp = MLPClassifier(
            hidden=int(params["hidden"]),
            epochs=int(params["epochs"]),
            lr=float(params["lr"]),
            dropout=float(params["dropout"]),
            class_weighted=True,
            seed=seed,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_MLPPipeline":
        X = self._scaler.fit_transform(self._imputer.fit_transform(X))
        self._mlp.fit(X, y.astype(np.float64))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._scaler.transform(self._imputer.transform(X))
        return self._mlp.predict_proba(X)


class AutoKerasLike(AutoMLSystem):
    """Bayesian NAS over MLP architectures (extension, not in Tables 2-5)."""

    name = "autokeras"

    def __init__(
        self,
        budget_hours: float | None = 1.0,
        seed: int = 0,
        max_models: int = 20,
        ensemble_top_k: int = 3,
    ) -> None:
        super().__init__(budget_hours=budget_hours, seed=seed, max_models=max_models)
        self.ensemble_top_k = ensemble_top_k

    # ------------------------------------------------------------- search

    def _sample_architecture(self) -> dict[str, object]:
        rng = self._rng
        return {
            "hidden": int(rng.choice(_HIDDEN_CHOICES)),
            "lr": float(
                np.exp(rng.uniform(np.log(_LR_RANGE[0]), np.log(_LR_RANGE[1])))
            ),
            "dropout": float(rng.uniform(*_DROPOUT_RANGE)),
            "epochs": int(rng.choice(_EPOCH_CHOICES)),
        }

    @staticmethod
    def _encode(params: dict[str, object]) -> np.ndarray:
        return np.array(
            [
                _HIDDEN_CHOICES.index(int(params["hidden"]))
                / (len(_HIDDEN_CHOICES) - 1),
                (np.log(float(params["lr"])) - np.log(_LR_RANGE[0]))
                / (np.log(_LR_RANGE[1]) - np.log(_LR_RANGE[0])),
                float(params["dropout"]) / _DROPOUT_RANGE[1],
                _EPOCH_CHOICES.index(int(params["epochs"]))
                / (len(_EPOCH_CHOICES) - 1),
            ]
        )

    def _nas_cost_complexity(self, params: dict[str, object]) -> float:
        return (
            int(params["hidden"]) / 64.0 * int(params["epochs"]) / 40.0
        )

    def _search(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        observations: list[tuple[np.ndarray, float]] = []
        while True:  # Stops via BudgetExhaustedError / max_models.
            if len(observations) < 4:
                params = self._sample_architecture()
            else:
                surrogate = GaussianProcessSurrogate().fit(
                    np.vstack([v for v, _s in observations]),
                    np.array([s for _v, s in observations]),
                )
                pool = [self._sample_architecture() for _ in range(32)]
                # The pool is a constant 32 candidate configs, not
                # workload-sized data: vectorizing buys nothing.
                encoded = np.vstack([self._encode(p) for p in pool])  # repro: noqa[PERF003]
                mean, std = surrogate.predict(encoded)
                best = max(s for _v, s in observations)
                ei = expected_improvement(mean, std, best)
                params = pool[int(np.argmax(ei))]

            if len(self._leaderboard) >= self.max_models:
                raise BudgetExhaustedError(f"{self.name}: max_models reached")
            hours = clock.charge_model(
                "stack",  # NAS training cost ~ a stacker fit per candidate.
                len(X),
                X.shape[1],
                complexity=self._nas_cost_complexity(params),
                label=f"mlp {params}",
                force=not self._leaderboard,
            )
            model = _MLPPipeline(params, seed=int(self._rng.integers(0, 2**31)))
            model.fit(X, y)
            proba = model.predict_proba(X_valid)[:, 1]
            score = f1_score(y_valid, (proba >= 0.5).astype(np.int64))
            config = Configuration("mlp", dict(params))
            self._leaderboard.append(
                LeaderboardEntry(config, model, score, proba, hours)
            )
            observations.append((self._encode(params), score))

    def _build_final(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        ranked = sorted(self._leaderboard, key=lambda e: -e.valid_f1)
        self._finalists = ranked[: self.ensemble_top_k]

    def _ensemble_proba(self, X: np.ndarray) -> np.ndarray:
        total = np.zeros(len(X))
        for entry in self._finalists:
            total += entry.model.predict_proba(X)[:, 1]
        return total / len(self._finalists)
