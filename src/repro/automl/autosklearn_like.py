"""AutoSklearn-style system: meta-learning + SMBO + ensemble selection."""

from __future__ import annotations

import numpy as np

from repro import faults, telemetry
from repro.automl.base import AutoMLSystem
from repro.automl.bayesian import SMBOProposer
from repro.automl.meta_learning import MetaFeatures, warm_start_portfolio
from repro.automl.resources import SimulatedClock
from repro.exceptions import BudgetExhaustedError
from repro.ml.ensemble import caruana_selection

__all__ = ["AutoSklearnLike"]


class AutoSklearnLike(AutoMLSystem):
    """Meta-learned warm start, Bayesian optimization, Caruana ensemble.

    Mirrors AutoSklearn's three mechanisms (Feurer et al. 2019):

    1. a warm-start portfolio selected by dataset meta-features;
    2. SMBO over the joint (family, hyper-parameter) space with a GP
       surrogate per family and expected improvement;
    3. greedy forward ensemble selection over all evaluated models,
       weighted by validation F1.

    Like the real system with its default ``time_left_for_this_task``, the
    search always runs the budget to exhaustion — which is why Table 2
    reports a flat 1.00 h training time for AutoSklearn.
    """

    name = "autosklearn"

    def __init__(
        self,
        budget_hours: float = 1.0,
        seed: int = 0,
        max_models: int = 40,
        ensemble_rounds: int = 15,
    ) -> None:
        super().__init__(budget_hours=budget_hours, seed=seed, max_models=max_models)
        self.ensemble_rounds = ensemble_rounds

    def _search(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        meta = MetaFeatures.of(X, y)
        proposer = SMBOProposer(self._rng)

        for config in warm_start_portfolio(meta):
            entry = self._evaluate(config, X, y, X_valid, y_valid, clock)
            if entry is not None:  # None = estimator failure, skipped.
                proposer.observe(entry.config, entry.valid_f1)

        while True:  # Until BudgetExhaustedError stops us.
            config = proposer.propose()
            entry = self._evaluate(config, X, y, X_valid, y_valid, clock)
            if entry is not None:
                proposer.observe(entry.config, entry.valid_f1)

    def _build_final(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        proba_matrix = np.column_stack(
            [entry.valid_proba for entry in self._leaderboard]
        )
        self._weights = caruana_selection(
            proba_matrix, y_valid, n_rounds=self.ensemble_rounds
        )
        # AutoSklearn burns its entire wall-clock allocation regardless of
        # convergence; emulate that so reported hours match the paper.
        # (Meaningless for unbounded budgets.)
        if not clock.budget.is_unbounded:
            remaining = clock.remaining_hours
            if remaining > 0:
                try:
                    clock.charge(remaining, "budget-exhausting search")
                except BudgetExhaustedError:
                    # Cannot fire for real (charging exactly what
                    # remains always fits), but an injected budget
                    # fault lands here: count it instead of silently
                    # swallowing, and settle the fault as absorbed.
                    telemetry.counter("automl.budget.clamped").inc()
                    faults.mark_recovered("automl.budget")

    def _ensemble_proba(self, X: np.ndarray) -> np.ndarray:
        total = np.zeros(len(X))
        for weight, entry in zip(self._weights, self._leaderboard):
            if weight > 0:
                total += weight * entry.model.predict_proba(X)[:, 1]
        return total
