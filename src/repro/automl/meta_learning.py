"""Meta-learning warm starts (the AutoSklearn ingredient).

Real AutoSklearn stores offline meta-features of hundreds of datasets and
starts the Bayesian optimization from configurations that worked on the
nearest neighbours. Our portfolio plays the same role at reproduction
scale: a hand-ordered list of configurations that are known-strong for
binary EM-style tasks, specialized by two meta-features that matter here
— training-set size and class imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.automl.search_space import Configuration, default_configuration

__all__ = ["MetaFeatures", "warm_start_portfolio"]


class MetaFeatures:
    """The tiny meta-feature vector used to pick a warm-start portfolio."""

    def __init__(self, n_rows: int, n_features: int, positive_fraction: float):
        self.n_rows = n_rows
        self.n_features = n_features
        self.positive_fraction = positive_fraction

    @classmethod
    def of(cls, X: np.ndarray, y: np.ndarray) -> "MetaFeatures":
        y = np.asarray(y)
        pos = float(np.mean(y == 1)) if len(y) else 0.0
        return cls(len(y), X.shape[1] if X.ndim == 2 else 0, pos)

    @property
    def is_small(self) -> bool:
        return self.n_rows < 800

    @property
    def is_imbalanced(self) -> bool:
        return self.positive_fraction < 0.2

    def __repr__(self) -> str:
        return (
            f"MetaFeatures(rows={self.n_rows}, features={self.n_features}, "
            f"pos={self.positive_fraction:.3f})"
        )


def warm_start_portfolio(meta: MetaFeatures) -> list[Configuration]:
    """Ordered warm-start configurations for the given meta-features.

    The ordering encodes the offline knowledge a real meta-learner would
    recall: boosted trees and logistic regression lead everywhere;
    small datasets prefer lower-capacity configurations; imbalanced ones
    prefer balanced class weights (all EM datasets are imbalanced, but the
    portfolio stays honest for other inputs).
    """
    portfolio: list[Configuration] = []

    if meta.is_small:
        portfolio.append(
            Configuration(
                "gbm",
                {
                    "n_estimators": 120,
                    "learning_rate": 0.08,
                    "max_depth": 3,
                    "min_samples_leaf": 3,
                    "subsample": 0.9,
                    "colsample": 0.8,
                },
            )
        )
        portfolio.append(Configuration("logreg", {"C": 1.0, "class_weight": "balanced"}))
        portfolio.append(
            Configuration(
                "random_forest",
                {
                    "n_estimators": 80,
                    "max_depth": 10,
                    "min_samples_leaf": 2,
                    "class_weight": "balanced",
                },
            )
        )
    else:
        portfolio.append(default_configuration("gbm"))
        portfolio.append(
            Configuration(
                "gbm",
                {
                    "n_estimators": 300,
                    "learning_rate": 0.06,
                    "max_depth": 6,
                    "min_samples_leaf": 5,
                    "subsample": 0.8,
                    "colsample": 0.8,
                },
            )
        )
        portfolio.append(Configuration("logreg", {"C": 10.0, "class_weight": "balanced"}))
        portfolio.append(default_configuration("random_forest"))

    if meta.is_imbalanced:
        portfolio.append(
            Configuration("linear_svm", {"C": 1.0, "class_weight": "balanced"})
        )
    else:
        portfolio.append(Configuration("linear_svm", {"C": 1.0, "class_weight": None}))

    portfolio.append(default_configuration("extra_trees"))
    portfolio.append(default_configuration("knn"))
    return portfolio
