"""AutoGluon-style system: bagging + multi-layer stacking.

AutoGluon-Tabular (Erickson et al. 2020) does not search hyper-parameters;
it trains a fixed portfolio of model families with tuned presets, bags
each via k-fold, stacks a second layer on the out-of-fold predictions
(with feature passthrough), and tops everything with a weighted ensemble.
This class reproduces that architecture on our zoo. Two GBM presets stand
in for LightGBM and CatBoost (both gradient-boosted trees).
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.automl.base import AutoMLSystem, LeaderboardEntry
from repro.automl.resources import SimulatedClock
from repro.automl.search_space import Configuration
from repro.exceptions import BudgetExhaustedError
from repro.ml.base import clone
from repro.ml.ensemble import caruana_selection
from repro.ml.metrics import f1_score
from repro.ml.model_selection import StratifiedKFold

__all__ = ["AutoGluonLike"]

#: The fixed base-layer portfolio, in AutoGluon's training order.
_PORTFOLIO: tuple[Configuration, ...] = (
    Configuration("gbm", {  # "LightGBM" preset.
        "n_estimators": 200, "learning_rate": 0.08, "max_depth": 6,
        "min_samples_leaf": 5, "subsample": 0.9, "colsample": 0.9,
    }),
    Configuration("gbm", {  # "CatBoost" preset: slower + deeper.
        "n_estimators": 300, "learning_rate": 0.05, "max_depth": 7,
        "min_samples_leaf": 3, "subsample": 1.0, "colsample": 0.8,
    }),
    Configuration("random_forest", {
        "n_estimators": 80, "max_depth": 18, "min_samples_leaf": 1,
        "class_weight": "balanced",
    }),
    Configuration("extra_trees", {
        "n_estimators": 80, "max_depth": 18, "min_samples_leaf": 1,
        "class_weight": "balanced",
    }),
    Configuration("knn", {"n_neighbors": 9, "weights": "distance"}),
    Configuration("logreg", {"C": 1.0, "class_weight": "balanced"}),
)


class AutoGluonLike(AutoMLSystem):
    """Fixed portfolio, k-fold bagging, stacking, weighted ensemble."""

    name = "autogluon"

    def __init__(
        self,
        budget_hours: float = 1.0,
        seed: int = 0,
        max_models: int = 40,
        n_bag_folds: int = 4,
        use_stacking: bool = True,
    ) -> None:
        super().__init__(budget_hours=budget_hours, seed=seed, max_models=max_models)
        self.n_bag_folds = n_bag_folds
        self.use_stacking = use_stacking

    # --------------------------------------------------------------- fit

    def _search(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        self._bagged: list[_BaggedModel] = []
        self._stackers: list[_BaggedModel] = []

        base_oof: list[np.ndarray] = []
        base_valid: list[np.ndarray] = []
        for config in _PORTFOLIO:
            bagged = self._fit_bagged(config, X, y, X_valid, y_valid, clock)
            if bagged is None:
                break
            self._bagged.append(bagged)
            base_oof.append(bagged.oof_proba)
            base_valid.append(bagged.valid_proba)

        if not self._bagged:
            return
        if not self.use_stacking or clock.remaining_hours <= 0:
            return

        # Layer 2: the same portfolio's boosted members, on OOF features
        # concatenated with the original features (passthrough).
        stack_X = np.hstack([np.column_stack(base_oof), X])
        stack_valid = np.hstack([np.column_stack(base_valid), X_valid])
        for config in _PORTFOLIO[:2]:
            try:
                bagged = self._fit_bagged(
                    config, stack_X, y, stack_valid, y_valid, clock,
                    family_label="stack",
                )
            except BudgetExhaustedError:
                # Graceful degradation: serve from the bagged base layer.
                faults.mark_recovered("automl.budget")
                break
            if bagged is None:
                break
            self._stackers.append(bagged)

    def _fit_bagged(
        self,
        config: Configuration,
        X: np.ndarray,
        y: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        clock: SimulatedClock,
        family_label: str | None = None,
    ) -> "_BaggedModel | None":
        """k-fold bag one configuration; None when budget stops us."""
        if len(self._leaderboard) >= self.max_models:
            return None
        family = family_label or config.family
        try:
            hours = clock.charge_model(
                family,
                len(X),
                X.shape[1],
                complexity=config.complexity() * self.n_bag_folds,
                label=f"bagged {config}",
                force=not self._leaderboard,
            )
        except BudgetExhaustedError:
            # Stop bagging further members; what's trained so far serves.
            faults.mark_recovered("automl.budget")
            return None

        folds = []
        oof = np.zeros(len(y))
        splitter = StratifiedKFold(n_splits=self.n_bag_folds, seed=self.seed)
        for train_idx, test_idx in splitter.split(y):
            model = config.build(seed=int(self._rng.integers(0, 2**31 - 1)))
            model.fit(X[train_idx], y[train_idx])
            oof[test_idx] = model.predict_proba(X[test_idx])[:, 1]
            folds.append(model)
        valid_proba = np.mean(
            [m.predict_proba(X_valid)[:, 1] for m in folds], axis=0
        )
        bagged = _BaggedModel(config, folds, oof, valid_proba)
        score = f1_score(y_valid, (valid_proba >= 0.5).astype(np.int64))
        self._leaderboard.append(
            LeaderboardEntry(config, bagged, score, valid_proba, hours)
        )
        return bagged

    def _build_final(self, X, y, X_valid, y_valid, clock: SimulatedClock) -> None:
        members = self._stackers if self._stackers else self._bagged
        self._final_members = members
        proba_matrix = np.column_stack([m.valid_proba for m in members])
        self._weights = caruana_selection(proba_matrix, y_valid, n_rounds=10)
        self._base_for_stack = self._bagged if self._stackers else []

    def _ensemble_proba(self, X: np.ndarray) -> np.ndarray:
        if self._base_for_stack:
            base_cols = [m.predict_proba(X) for m in self._base_for_stack]
            X_in = np.hstack([np.column_stack(base_cols), X])
        else:
            X_in = X
        total = np.zeros(len(X))
        for weight, member in zip(self._weights, self._final_members):
            if weight > 0:
                total += weight * member.predict_proba(X_in)
        return total


class _BaggedModel:
    """k fold-trained copies of one configuration, averaged at inference."""

    def __init__(
        self,
        config: Configuration,
        folds: list,
        oof_proba: np.ndarray,
        valid_proba: np.ndarray,
    ) -> None:
        self.config = config
        self.folds = folds
        self.oof_proba = oof_proba
        self.valid_proba = valid_proba

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return np.mean([m.predict_proba(X)[:, 1] for m in self.folds], axis=0)
