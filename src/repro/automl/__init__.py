"""From-scratch AutoML systems in the style of the paper's three subjects.

* :class:`AutoSklearnLike` — meta-learning warm start + Bayesian
  optimization (random-forest surrogate, expected improvement) + greedy
  ensemble selection.
* :class:`AutoGluonLike` — k-fold bagging of a fixed model portfolio,
  multi-layer stacking, weighted ensemble on top.
* :class:`H2OAutoMLLike` — random search over the zoo + super-learner
  stacking.

All three share the :class:`AutoMLSystem` interface: ``fit(X, y,
X_valid, y_valid)`` under a (simulated) time budget, then ``predict`` /
``predict_proba``. The simulated clock (:mod:`repro.automl.resources`)
replaces wall-clock training hours with a deterministic cost model so the
paper's 1h/6h budget experiments reproduce in seconds (DESIGN.md §2).
"""

from repro.automl.autogluon_like import AutoGluonLike
from repro.automl.autokeras_like import AutoKerasLike
from repro.automl.autosklearn_like import AutoSklearnLike
from repro.automl.base import (
    ESTIMATOR_FAILURES,
    AutoMLSystem,
    FitReport,
    LeaderboardEntry,
)
from repro.automl.h2o_like import H2OAutoMLLike
from repro.automl.random_search import RandomSearchProposer
from repro.automl.resources import SimulatedClock, TimeBudget, model_cost_hours
from repro.automl.search_space import (
    CategoricalDim,
    ConfigSpace,
    Dimension,
    FloatDim,
    IntDim,
)

__all__ = [
    "AutoGluonLike",
    "AutoKerasLike",
    "AutoMLSystem",
    "AutoSklearnLike",
    "CategoricalDim",
    "ConfigSpace",
    "Dimension",
    "ESTIMATOR_FAILURES",
    "FitReport",
    "FloatDim",
    "H2OAutoMLLike",
    "IntDim",
    "LeaderboardEntry",
    "RandomSearchProposer",
    "SimulatedClock",
    "TimeBudget",
    "make_automl",
    "model_cost_hours",
    "AUTOML_NAMES",
]

#: Registry keys for the three systems, in the paper's column order.
AUTOML_NAMES: tuple[str, ...] = ("autosklearn", "autogluon", "h2o")


def make_automl(name: str, **kwargs) -> AutoMLSystem:
    """Instantiate an AutoML system by registry name."""
    from repro.exceptions import UnknownModelError

    factories = {
        "autosklearn": AutoSklearnLike,
        "autogluon": AutoGluonLike,
        "h2o": H2OAutoMLLike,
        # Extension beyond the paper's three subjects (see its related
        # work): Auto-Keras-style neural architecture search.
        "autokeras": AutoKerasLike,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise UnknownModelError(
            f"unknown AutoML system {name!r}; known: {', '.join(AUTOML_NAMES)}"
        ) from None
    return factory(**kwargs)
