"""Common interface and machinery of the three AutoML systems.

An :class:`AutoMLSystem` searches model configurations under a simulated
time budget, maintains a leaderboard of evaluated candidates (scored on
the validation split by F1, the paper's metric), builds a final ensemble,
and tunes the decision threshold on validation data — the standard recipe
all three subject systems share; they differ in *how* candidates are
proposed and *how* the ensemble is built.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro import faults, telemetry
from repro.automl.resources import SimulatedClock, TimeBudget, model_cost_hours
from repro.automl.search_space import Configuration
from repro.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    NotFittedError,
)
from repro.ml.metrics import best_f1_threshold, f1_score

__all__ = [
    "ESTIMATOR_FAILURES",
    "LeaderboardEntry",
    "FitReport",
    "AutoMLSystem",
]

#: The exception types a *single candidate* may legitimately die of —
#: bad hyper-parameter combinations (:class:`ConfigurationError` covers
#: :class:`~repro.exceptions.SearchSpaceError` and
#: :class:`~repro.exceptions.UnknownModelError`), numerically singular
#: fits, and estimators queried before convergence. The trial loop
#: records these as rejected trials and moves on; anything outside this
#: tuple is a bug and propagates.
ESTIMATOR_FAILURES = (
    ConfigurationError,
    NotFittedError,
    FloatingPointError,
    ZeroDivisionError,
    np.linalg.LinAlgError,
)


@dataclass
class LeaderboardEntry:
    """One evaluated candidate configuration."""

    config: Configuration
    model: object  # Fitted pipeline.
    valid_f1: float
    valid_proba: np.ndarray
    train_hours: float

    def __repr__(self) -> str:
        return (
            f"LeaderboardEntry({self.config}, f1={self.valid_f1:.4f}, "
            f"hours={self.train_hours:.3f})"
        )


@dataclass
class FitReport:
    """Summary of one AutoML fit, reported by the experiment tables."""

    system: str
    n_evaluated: int
    simulated_hours: float
    wall_seconds: float
    best_valid_f1: float
    threshold: float
    leaderboard: list[LeaderboardEntry] = field(default_factory=list)


class AutoMLSystem(abc.ABC):
    """Budgeted search over the model zoo with ensembling and thresholding.

    Parameters
    ----------
    budget_hours:
        Simulated training budget (the paper uses 1h and 6h); ``None``
        means unbounded, which is AutoGluon's default configuration.
    seed:
        Seeds candidate sampling and model training.
    max_models:
        Hard cap on evaluated candidates, independent of budget (keeps
        real wall-clock bounded at tiny simulated costs).
    """

    name = "automl"

    def __init__(
        self,
        budget_hours: float | None = 1.0,
        seed: int = 0,
        max_models: int = 40,
    ) -> None:
        self.budget_hours = budget_hours
        self.seed = seed
        self.max_models = max_models

    @property
    def _budget_value(self) -> float:
        import math

        return math.inf if self.budget_hours is None else self.budget_hours

    # ------------------------------------------------------------- public

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_valid: np.ndarray | None = None,
        y_valid: np.ndarray | None = None,
    ) -> "AutoMLSystem":
        """Search, ensemble, and calibrate the decision threshold.

        Without an explicit validation split, 25% of the training rows are
        held out internally (stratified).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X_valid is None or y_valid is None:
            from repro.ml.model_selection import train_test_split

            rng = np.random.default_rng(self.seed)
            X, X_valid, y, y_valid = train_test_split(
                X, y, test_size=0.25, rng=rng
            )
        else:
            X_valid = np.asarray(X_valid, dtype=np.float64)
            y_valid = np.asarray(y_valid)

        start = telemetry.wallclock()
        clock = SimulatedClock(TimeBudget(self._budget_value))
        self._leaderboard: list[LeaderboardEntry] = []
        self._rng = np.random.default_rng(self.seed)

        with telemetry.span(
            "automl.fit",
            system=self.name,
            budget_hours=self.budget_hours,
            rows=len(X),
            features=int(X.shape[1]),
        ) as fit_span:
            with telemetry.span("automl.search", system=self.name):
                try:
                    self._search(X, y, X_valid, y_valid, clock)
                except BudgetExhaustedError as exc:
                    # The expected stop signal — but leave a trace
                    # instead of swallowing it silently, and settle any
                    # injected budget fault as gracefully absorbed.
                    telemetry.event(
                        "automl.search.stopped",
                        system=self.name,
                        reason=str(exc),
                    )
                    faults.mark_recovered("automl.budget")
            if not self._leaderboard:
                raise BudgetExhaustedError(
                    f"{self.name}: budget too small to evaluate any "
                    "configuration"
                )

            with telemetry.span("automl.ensemble", system=self.name):
                self._build_final(X, y, X_valid, y_valid, clock)
                proba = self._ensemble_proba(X_valid)
                self._threshold, best_f1 = best_f1_threshold(y_valid, proba)
            fit_span.set(
                n_evaluated=len(self._leaderboard),
                simulated_hours=clock.elapsed_hours,
                best_valid_f1=best_f1,
            )
        self.report_ = FitReport(
            system=self.name,
            n_evaluated=len(self._leaderboard),
            simulated_hours=clock.elapsed_hours,
            wall_seconds=telemetry.wallclock() - start,
            best_valid_f1=best_f1,
            threshold=self._threshold,
            leaderboard=sorted(
                self._leaderboard, key=lambda e: -e.valid_f1
            ),
        )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(non-match), P(match) columns for every row."""
        self._check_fitted()
        p1 = self._ensemble_proba(np.asarray(X, dtype=np.float64))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Match predictions at the validation-tuned threshold."""
        self._check_fitted()
        p1 = self._ensemble_proba(np.asarray(X, dtype=np.float64))
        return (p1 >= self._threshold).astype(np.int64)

    @property
    def leaderboard(self) -> list[LeaderboardEntry]:
        """Evaluated candidates, best validation F1 first."""
        self._check_fitted()
        return self.report_.leaderboard

    # ----------------------------------------------------------- plumbing

    def _check_fitted(self) -> None:
        if not hasattr(self, "report_"):
            raise NotFittedError(f"{type(self).__name__} must be fitted first")

    def _evaluate(
        self,
        config: Configuration,
        X: np.ndarray,
        y: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        clock: SimulatedClock,
    ) -> LeaderboardEntry | None:
        """Train one candidate, charge the clock, record on leaderboard.

        Every candidate the search proposes — trained, turned away, or
        failed — lands in the telemetry trial ledger, so an exported
        trace accounts for the entire budget spend of a fit. A candidate
        that dies of one of :data:`ESTIMATOR_FAILURES` is recorded as a
        rejected trial and skipped (``None`` is returned); any other
        exception is a bug in the search itself and propagates.
        """
        if len(self._leaderboard) >= self.max_models:
            telemetry.trial(
                system=self.name,
                family=config.family,
                config=str(config),
                hours=0.0,
                valid_f1=None,
                accepted=False,
                reason="max-models",
            )
            raise BudgetExhaustedError(f"{self.name}: max_models reached")
        try:
            hours = clock.charge_model(
                config.family,
                len(X),
                X.shape[1],
                complexity=config.complexity(),
                label=str(config),
                # The first model always trains, even past the budget — no
                # real AutoML system returns nothing.
                force=not self._leaderboard,
            )
        except BudgetExhaustedError:
            telemetry.trial(
                system=self.name,
                family=config.family,
                config=str(config),
                hours=model_cost_hours(
                    config.family,
                    len(X),
                    X.shape[1],
                    complexity=config.complexity(),
                ),
                valid_f1=None,
                accepted=False,
                reason="budget-exhausted",
            )
            raise
        try:
            model = config.build(seed=int(self._rng.integers(0, 2**31 - 1)))
            model.fit(X, y)
            proba = model.predict_proba(X_valid)[:, 1]
        except ESTIMATOR_FAILURES as exc:
            # One bad candidate must not abort the whole search (the
            # budget it charged stays spent, as in any real system).
            telemetry.counter("automl.trials.failed").inc()
            telemetry.trial(
                system=self.name,
                family=config.family,
                config=str(config),
                hours=hours,
                valid_f1=None,
                accepted=False,
                reason=f"estimator-failure:{type(exc).__name__}",
            )
            return None
        score = f1_score(y_valid, (proba >= 0.5).astype(np.int64))
        entry = LeaderboardEntry(config, model, score, proba, hours)
        self._leaderboard.append(entry)
        telemetry.counter("automl.candidates").inc()
        telemetry.trial(
            system=self.name,
            family=config.family,
            config=str(config),
            hours=hours,
            valid_f1=score,
            accepted=True,
        )
        return entry

    # ----------------------------------------------------- to be provided

    @abc.abstractmethod
    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        clock: SimulatedClock,
    ) -> None:
        """Propose and evaluate candidates until the budget runs out."""

    @abc.abstractmethod
    def _build_final(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        clock: SimulatedClock,
    ) -> None:
        """Assemble the final predictor from the leaderboard."""

    @abc.abstractmethod
    def _ensemble_proba(self, X: np.ndarray) -> np.ndarray:
        """P(match) of the final predictor."""
