"""Paper-style ASCII table rendering.

Every experiment module returns its data as a list of row dicts plus a
column specification; :func:`render_table` lays them out in a fixed-width
grid that mirrors the paper's tables closely enough to compare line by
line.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, decimals: int = 2) -> str:
    """Human formatting: floats to fixed decimals, None to '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    decimals: int = 2,
) -> str:
    """Fixed-width grid with a title line and a header separator."""
    formatted = [
        [format_value(cell, decimals) for cell in row] for row in rows
    ]
    widths = [len(str(col)) for col in columns]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(line(row) for row in formatted)
    return f"{title}\n{line(list(columns))}\n{separator}\n{body}"
