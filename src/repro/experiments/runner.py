"""Shared experiment runner with two-level result caching.

The five tables overlap heavily — Table 4 derives from Tables 2 and 3,
Table 5 re-uses Table 2's DeepMatcher runs and Table 3's hybrid+ALBERT
embeddings — so every (system, dataset, configuration) evaluation is
memoized in memory and, unless disabled, persisted as JSON under
``.repro_cache/`` keyed by every accuracy-relevant knob. Re-running a
benchmark after an interruption resumes instead of recomputing.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro import faults, telemetry
from repro.adapter import (
    EMAdapter,
    NativeTabularFeaturizer,
    Word2VecFeaturizer,
)
from repro.automl import make_automl
from repro.data import load_dataset, split_dataset
from repro.data.splits import DatasetSplits
from repro.experiments.config import ExperimentConfig
from repro.matching import DeepMatcherHybrid, EMPipeline, evaluate_matcher
from repro.matching.evaluation import EvaluationResult
from repro.ml.metrics import f1_score, precision_score, recall_score

__all__ = ["ExperimentRunner", "budget_tag"]

#: The exact key set a disk-cached record must carry to be replayable.
_RESULT_FIELDS = frozenset(EvaluationResult.__dataclass_fields__)


def budget_tag(budget_hours: float | None) -> str:
    """Canonical text form of a budget for cache keys (``None`` = inf)."""
    return "inf" if budget_hours is None else f"{budget_hours:g}"


class ExperimentRunner:
    """Caches splits, featurizations and evaluation results."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self._splits: dict[str, DatasetSplits] = {}
        self._results: dict[str, dict] = {}

    # ------------------------------------------------------------- splits

    def splits(self, dataset_name: str) -> DatasetSplits:
        """The 60-20-20 splits of a benchmark dataset at config scale."""
        if dataset_name not in self._splits:
            with telemetry.span(
                "runner.load_splits", dataset=dataset_name, scale=self.config.scale
            ):
                dataset = load_dataset(dataset_name, scale=self.config.scale)
                self._splits[dataset_name] = split_dataset(dataset)
        return self._splits[dataset_name]

    # -------------------------------------------------------------- cache

    def _cache_path(self, key: str) -> Path | None:
        directory = self.config.cache_dir()
        if directory is None:
            return None
        directory.mkdir(parents=True, exist_ok=True)
        return directory / f"{key}.json"

    def _cached(self, key: str) -> dict | None:
        if key in self._results:
            telemetry.counter("runner.cache.memory.hits").inc()
            return self._results[key]
        path = self._cache_path(key)
        if path is None or not path.exists():
            telemetry.counter("runner.cache.disk.misses").inc()
            return None
        faults.checkpoint("runner.cache.read", path=str(path))
        try:
            with path.open() as handle:
                record = json.load(handle)
        except (ValueError, OSError):
            # Half-written or garbled by a dying writer: JSONDecodeError
            # for truncated text, UnicodeDecodeError (also a ValueError)
            # for binary garbage. Drop the bad entry so nothing re-reads
            # it, then recompute and overwrite.
            telemetry.counter("runner.cache.disk.corrupt").inc()
            try:
                os.unlink(path)
            except OSError:
                pass  # Already replaced by a healthy writer.
            faults.mark_recovered("runner.cache.read", path=str(path))
            return None
        if not isinstance(record, dict) or set(record) != _RESULT_FIELDS:
            # A record written before EvaluationResult gained or lost a
            # field would crash its constructor; treat the stale shape as
            # a miss and overwrite it with a freshly computed result.
            telemetry.counter("runner.cache.disk.stale").inc()
            return None
        telemetry.counter("runner.cache.disk.hits").inc()
        self._results[key] = record
        return record

    def _store(self, key: str, record: dict) -> None:
        self._results[key] = record
        path = self._cache_path(key)
        if path is not None:
            # Atomic write: concurrent workers may compute the same key
            # (deterministically identical), and a rename never exposes a
            # half-written file to a concurrent reader. The temp file is
            # unlinked on any failure (e.g. a non-serializable record or
            # a full disk) instead of leaking into the cache directory;
            # after a successful rename the unlink is a no-op. Transient
            # failures retry with a fresh temp file per attempt.
            def _write() -> None:
                fd, tmp_name = tempfile.mkstemp(
                    dir=path.parent, suffix=".tmp", prefix=path.stem
                )
                try:
                    with os.fdopen(fd, "w") as handle:
                        faults.checkpoint(
                            "runner.cache.store.write", path=str(path)
                        )
                        json.dump(record, handle, indent=1)
                    faults.checkpoint(
                        "runner.cache.store.replace", path=str(path)
                    )
                    os.replace(tmp_name, path)
                finally:
                    if os.path.exists(tmp_name):
                        os.unlink(tmp_name)

            faults.io_retry(_write, "runner.cache.store")

    def seed_result(self, key: str, record: dict) -> None:
        """Inject a precomputed record into the in-memory cache.

        The parallel executor ships each worker's ``EvaluationResult``
        back over the result pipe and seeds the rendering runner with it,
        so tables re-render from memory even when the disk cache is off.
        """
        if set(record) != _RESULT_FIELDS:
            raise ValueError(
                f"record for {key!r} does not match EvaluationResult: "
                f"{sorted(record)}"
            )
        self._results[key] = dict(record)

    @staticmethod
    def _to_result(record: dict) -> EvaluationResult:
        return EvaluationResult(**record)

    # ---------------------------------------------------------------- raw

    def run_raw_automl(
        self,
        system: str,
        dataset_name: str,
        budget_hours: float | None,
    ) -> EvaluationResult:
        """Section 5.1: an AutoML system on no-adapter features."""
        tag = budget_tag(budget_hours)
        key = self.config.cache_key("raw", system, dataset_name, tag)
        cached = self._cached(key)
        if cached is not None:
            return self._to_result(cached)

        with telemetry.span(
            "runner.run_raw",
            system=system,
            dataset=dataset_name,
            budget=tag,
        ):
            splits = self.splits(dataset_name)
            if system == "autosklearn":
                featurizer = Word2VecFeaturizer(seed=self.config.seed)
            else:
                featurizer = NativeTabularFeaturizer()
            with telemetry.span(
                "runner.featurize", featurizer=type(featurizer).__name__
            ):
                featurizer.fit(splits.train)
                X_train = featurizer.transform(splits.train)
                X_valid = featurizer.transform(splits.valid)
                X_test = featurizer.transform(splits.test)

            automl = make_automl(
                system,
                budget_hours=budget_hours,
                seed=self.config.seed,
                max_models=self.config.max_models,
            )
            start = telemetry.wallclock()
            automl.fit(
                X_train, splits.train.labels, X_valid, splits.valid.labels
            )
            wall = telemetry.wallclock() - start
            predictions = automl.predict(X_test)
            labels = splits.test.labels
            result = EvaluationResult(
                system=f"{system}(raw)",
                dataset=dataset_name,
                f1=100.0 * f1_score(labels, predictions),
                precision=100.0 * precision_score(labels, predictions),
                recall=100.0 * recall_score(labels, predictions),
                simulated_hours=automl.report_.simulated_hours,
                wall_seconds=wall,
            )
        self._store(key, result.__dict__)
        return result

    # ------------------------------------------------------------ adapted

    def run_adapted_automl(
        self,
        system: str,
        dataset_name: str,
        tokenizer: str,
        embedder: str,
        budget_hours: float | None = 1.0,
    ) -> EvaluationResult:
        """Sections 5.2/5.3: AutoML pipelined with an EM adapter."""
        tag = budget_tag(budget_hours)
        key = self.config.cache_key(
            "adapted", system, dataset_name, tokenizer, embedder, tag
        )
        cached = self._cached(key)
        if cached is not None:
            return self._to_result(cached)

        with telemetry.span(
            "runner.run_adapted",
            system=system,
            dataset=dataset_name,
            tokenizer=tokenizer,
            embedder=embedder,
            budget=tag,
        ):
            splits = self.splits(dataset_name)
            pipeline = EMPipeline(
                adapter=EMAdapter(tokenizer, embedder, "mean"),
                automl=system,
                budget_hours=budget_hours,
                seed=self.config.seed,
                max_models=self.config.max_models,
            )
            result = evaluate_matcher(
                pipeline, splits, system_name=f"{system}+{tokenizer}+{embedder}"
            )
        self._store(key, result.__dict__)
        return result

    # -------------------------------------------------------- deepmatcher

    def run_deepmatcher(self, dataset_name: str) -> EvaluationResult:
        """The DeepMatcher (Hybrid) baseline on one dataset."""
        key = self.config.cache_key("deepmatcher", dataset_name)
        cached = self._cached(key)
        if cached is not None:
            return self._to_result(cached)
        with telemetry.span("runner.run_deepmatcher", dataset=dataset_name):
            splits = self.splits(dataset_name)
            matcher = DeepMatcherHybrid(seed=self.config.seed)
            result = evaluate_matcher(
                matcher, splits, system_name="deepmatcher"
            )
        self._store(key, result.__dict__)
        return result
