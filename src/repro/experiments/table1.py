"""Table 1 — the Magellan benchmark statistics.

Reports, for each of the 12 datasets: type, source dataset pair, number
of candidate pairs and match percentage. With ``generate=True`` the
statistics are measured on actually-generated data, verifying the
registry numbers are realised.
"""

from __future__ import annotations

from repro.data.benchmark import dataset_statistics
from repro.experiments.tables import render_table

__all__ = ["run_table1", "table1_rows"]


def table1_rows(scale: float = 1.0, generate: bool = False) -> list[dict]:
    """Row dicts in the paper's column layout."""
    return dataset_statistics(scale=scale, generate=generate)


def run_table1(scale: float = 1.0, generate: bool = False) -> str:
    """Render Table 1 as text."""
    rows = table1_rows(scale=scale, generate=generate)
    return render_table(
        "Table 1: Magellan Benchmark"
        + (f" (generated at scale {scale:g})" if generate else ""),
        ["Dataset", "Type", "Datasets", "Size", "% Match"],
        [
            [r["dataset"], r["type"], r["datasets"], r["size"], r["match_percent"]]
            for r in rows
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_table1(generate=False))
