"""Experiment harness regenerating every table of the paper's Section 5.

One module per table (``table1`` ... ``table5``), a shared runner with
process- and disk-level result caching, and paper-style ASCII rendering.
The benchmark suite under ``benchmarks/`` calls straight into these.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import collect_cached_results, write_report
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import run_table1, table1_rows
from repro.experiments.table2 import run_table2, table2_rows
from repro.experiments.table3 import run_table3, table3_rows
from repro.experiments.table4 import average_deltas, run_table4, table4_rows
from repro.experiments.table5 import run_table5, table5_rows
from repro.experiments.tables import format_value

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "average_deltas",
    "collect_cached_results",
    "format_value",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "write_report",
]
