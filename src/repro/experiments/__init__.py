"""Experiment harness regenerating every table of the paper's Section 5.

One module per table (``table1`` ... ``table5``), a shared runner with
process- and disk-level result caching, and paper-style ASCII rendering.
The benchmark suite under ``benchmarks/`` calls straight into these.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
