"""Table 2 — effectiveness of raw AutoML systems on EM tasks.

Per dataset: F1 and simulated training hours of AutoSklearn (1h budget,
Word2Vec featurization), AutoGluon (default configuration = unbounded
budget), H2OAutoML (1h cap), and the DeepMatcher (Hybrid) baseline.
"""

from __future__ import annotations

from repro.data.benchmark import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table

__all__ = ["run_table2", "table2_rows"]

#: (system, budget) in the paper's column order; None = unbounded.
SYSTEM_BUDGETS: tuple[tuple[str, float | None], ...] = (
    ("autosklearn", 1.0),
    ("autogluon", None),
    ("h2o", 1.0),
)


def table2_rows(
    runner: ExperimentRunner | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
) -> list[dict]:
    """One dict per dataset with per-system F1 and hours."""
    runner = runner or ExperimentRunner()
    rows = []
    for name in datasets:
        row: dict[str, object] = {"dataset": name}
        for system, budget in SYSTEM_BUDGETS:
            result = runner.run_raw_automl(system, name, budget)
            row[f"{system}_f1"] = result.f1
            row[f"{system}_hours"] = result.simulated_hours
        dm = runner.run_deepmatcher(name)
        row["deepmatcher_f1"] = dm.f1
        row["deepmatcher_hours"] = dm.simulated_hours
        rows.append(row)
    return rows


def run_table2(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    runner: ExperimentRunner | None = None,
) -> str:
    """Render Table 2 as text (``runner`` may arrive pre-warmed)."""
    runner = runner or ExperimentRunner(config)
    rows = table2_rows(runner, datasets)
    columns = ["Dataset"]
    for system, _budget in SYSTEM_BUDGETS:
        columns += [f"{system} F1", f"{system} h"]
    columns += ["DeepMatcher F1", "DeepMatcher h"]
    body = []
    for row in rows:
        line: list[object] = [row["dataset"]]
        for system, _budget in SYSTEM_BUDGETS:
            line += [row[f"{system}_f1"], row[f"{system}_hours"]]
        line += [row["deepmatcher_f1"], row["deepmatcher_hours"]]
        body.append(line)
    return render_table(
        "Table 2: Effectiveness of AutoML systems in EM tasks", columns, body
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_table2())
