"""Table 5 — EM-adapted AutoML vs DeepMatcher under training budgets.

The paper's final experiment: the best adapter configuration (hybrid
tokenizer + ALBERT embedder) pipelined with each AutoML system, under 1h
and 6h simulated budgets, against DeepMatcher (Hybrid). The delta column
is the difference between the best adapted-AutoML F1 and DeepMatcher's.
"""

from __future__ import annotations

import numpy as np

from repro.automl import AUTOML_NAMES
from repro.data.benchmark import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table

__all__ = ["run_table5", "table5_rows"]

#: The winning adapter configuration from Table 3 (paper Section 5.3).
BEST_TOKENIZER = "hybrid"
BEST_EMBEDDER = "albert"


def table5_rows(
    runner: ExperimentRunner | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    systems: tuple[str, ...] = AUTOML_NAMES,
    budgets: tuple[float, float] = (1.0, 6.0),
) -> list[dict]:
    """One dict per dataset: DM baseline + per-budget per-system F1."""
    runner = runner or ExperimentRunner()
    rows = []
    for name in datasets:
        dm = runner.run_deepmatcher(name)
        row: dict[str, object] = {
            "dataset": name,
            "deepmatcher_f1": dm.f1,
            "deepmatcher_hours": dm.simulated_hours,
        }
        for budget in budgets:
            tag = f"{budget:g}h"
            scores = []
            for system in systems:
                result = runner.run_adapted_automl(
                    system, name, BEST_TOKENIZER, BEST_EMBEDDER,
                    budget_hours=budget,
                )
                row[f"{system}_{tag}"] = result.f1
                scores.append(result.f1)
            row[f"delta_{tag}"] = float(np.max(scores)) - dm.f1
        rows.append(row)
    return rows


def run_table5(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    systems: tuple[str, ...] = AUTOML_NAMES,
    budgets: tuple[float, float] = (1.0, 6.0),
    runner: ExperimentRunner | None = None,
) -> str:
    """Render Table 5 as text."""
    runner = runner or ExperimentRunner(config)
    rows = table5_rows(runner, datasets, systems, budgets)
    columns = ["Dataset", "DM F1", "DM h"]
    for budget in budgets:
        tag = f"{budget:g}h"
        columns += [f"{system}@{tag}" for system in systems] + [f"Δ@{tag}"]
    body = []
    for row in rows:
        line: list[object] = [
            row["dataset"], row["deepmatcher_f1"], row["deepmatcher_hours"],
        ]
        for budget in budgets:
            tag = f"{budget:g}h"
            line += [row[f"{system}_{tag}"] for system in systems]
            line += [row[f"delta_{tag}"]]
        body.append(line)
    return render_table(
        "Table 5: EM-Adapter + AutoML vs DeepMatcher (training budgets)",
        columns,
        body,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_table5())
