"""Table 4 — impact of the EM adapter on AutoML performance.

Per dataset and AutoML system: the no-adapter F1 (Table 2's runs), the
average F1 across the five embedders under attribute and hybrid
tokenization (Table 3's runs), and the delta between the no-adapter score
and the mean of the two adapter variants. Entirely derived from cached
runs of the other tables.
"""

from __future__ import annotations

import numpy as np

from repro.automl import AUTOML_NAMES
from repro.data.benchmark import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table2 import SYSTEM_BUDGETS
from repro.experiments.table3 import TOKENIZER_MODES
from repro.experiments.tables import render_table
from repro.transformers import EMBEDDER_NAMES

__all__ = ["run_table4", "table4_rows", "average_deltas"]


def table4_rows(
    runner: ExperimentRunner | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    systems: tuple[str, ...] = AUTOML_NAMES,
    embedders: tuple[str, ...] = EMBEDDER_NAMES,
) -> list[dict]:
    """One dict per dataset with per-system no-adapter/attr/hybrid/delta."""
    runner = runner or ExperimentRunner()
    budgets = dict(SYSTEM_BUDGETS)
    rows = []
    for name in datasets:
        row: dict[str, object] = {"dataset": name}
        for system in systems:
            raw = runner.run_raw_automl(system, name, budgets.get(system, 1.0))
            mode_means = {}
            for mode in TOKENIZER_MODES:
                scores = [
                    runner.run_adapted_automl(
                        system, name, mode, embedder, budget_hours=1.0
                    ).f1
                    for embedder in embedders
                ]
                mode_means[mode] = float(np.mean(scores))
            adapter_mean = float(np.mean(list(mode_means.values())))
            row[f"{system}_none"] = raw.f1
            row[f"{system}_attr"] = mode_means["attr"]
            row[f"{system}_hybrid"] = mode_means["hybrid"]
            row[f"{system}_delta"] = adapter_mean - raw.f1
        rows.append(row)
    return rows


def average_deltas(rows: list[dict], systems: tuple[str, ...] = AUTOML_NAMES) -> dict:
    """Mean adapter impact per system (the paper quotes ~23-28 points)."""
    return {
        system: float(np.mean([row[f"{system}_delta"] for row in rows]))
        for system in systems
    }


def run_table4(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    systems: tuple[str, ...] = AUTOML_NAMES,
    embedders: tuple[str, ...] = EMBEDDER_NAMES,
    runner: ExperimentRunner | None = None,
) -> str:
    """Render Table 4 as text, with the per-system average delta footer."""
    runner = runner or ExperimentRunner(config)
    rows = table4_rows(runner, datasets, systems, embedders)
    columns = ["Dataset"]
    for system in systems:
        columns += [
            f"{system}:none",
            f"{system}:attr",
            f"{system}:hybrid",
            f"{system}:Δ",
        ]
    body = []
    for row in rows:
        line: list[object] = [row["dataset"]]
        for system in systems:
            line += [
                row[f"{system}_none"],
                row[f"{system}_attr"],
                row[f"{system}_hybrid"],
                row[f"{system}_delta"],
            ]
        body.append(line)
    table = render_table(
        "Table 4: Impact of EM-Adapter on AutoML performance", columns, body
    )
    deltas = average_deltas(rows, systems)
    footer = "Average Δ: " + "  ".join(
        f"{system}={delta:+.2f}" for system, delta in deltas.items()
    )
    return f"{table}\n{footer}"


if __name__ == "__main__":  # pragma: no cover
    print(run_table4())
