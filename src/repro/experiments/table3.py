"""Table 3 — EM-adapter effectiveness grid.

For each AutoML system (sub-tables a/b/c as in the paper): per dataset,
the F1 of the adapter under {attribute, hybrid} tokenization x the five
transformer embedders, with a 1h budget. This is the largest experiment
of the paper; results are cached through the runner so Tables 4 and 5
reuse them.
"""

from __future__ import annotations

from repro.automl import AUTOML_NAMES
from repro.data.benchmark import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.transformers import EMBEDDER_NAMES

__all__ = ["run_table3", "table3_rows", "TOKENIZER_MODES"]

#: The two tokenization modes the paper reports in Table 3.
TOKENIZER_MODES: tuple[str, ...] = ("attr", "hybrid")


def table3_rows(
    system: str,
    runner: ExperimentRunner | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    embedders: tuple[str, ...] = EMBEDDER_NAMES,
) -> list[dict]:
    """Grid rows for one AutoML system."""
    runner = runner or ExperimentRunner()
    rows = []
    for name in datasets:
        row: dict[str, object] = {"dataset": name}
        for mode in TOKENIZER_MODES:
            for embedder in embedders:
                result = runner.run_adapted_automl(
                    system, name, mode, embedder, budget_hours=1.0
                )
                row[f"{mode}_{embedder}"] = result.f1
        rows.append(row)
    return rows


def run_table3(
    config: ExperimentConfig | None = None,
    systems: tuple[str, ...] = AUTOML_NAMES,
    datasets: tuple[str, ...] = DATASET_NAMES,
    embedders: tuple[str, ...] = EMBEDDER_NAMES,
    runner: ExperimentRunner | None = None,
) -> str:
    """Render the three sub-tables (a, b, c) as text."""
    runner = runner or ExperimentRunner(config)
    sections = []
    for label, system in zip("abc", systems):
        rows = table3_rows(system, runner, datasets, embedders)
        columns = ["Dataset"]
        for mode in TOKENIZER_MODES:
            prefix = "Attr" if mode == "attr" else "Hybrid"
            columns += [f"{prefix}:{e}" for e in embedders]
        body = []
        for row in rows:
            line: list[object] = [row["dataset"]]
            for mode in TOKENIZER_MODES:
                line += [row[f"{mode}_{e}"] for e in embedders]
            body.append(line)
        sections.append(
            render_table(
                f"Table 3({label}): EM-Adapter with {system}", columns, body
            )
        )
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(run_table3())
