"""Reproduction report: assemble paper-vs-measured markdown from the cache.

``repro-em report`` renders a compact markdown summary of every cached
experiment result — per-table coverage, headline aggregates (raw vs
DeepMatcher gap, adapter deltas, budget effects) — so the state of a
long-running reproduction is inspectable at any point without re-running
anything.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro import faults
from repro.experiments.config import ExperimentConfig

__all__ = ["collect_cached_results", "build_report", "write_report"]


def collect_cached_results(
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """All cached evaluation records matching the current configuration."""
    config = config or ExperimentConfig()
    directory = config.cache_dir()
    if directory is None or not directory.exists():
        return []
    prefix = config.cache_key()  # version + scale + max_models + seed
    records = []
    for path in sorted(directory.glob("*.json")):
        if not path.name.startswith(prefix):
            continue
        faults.checkpoint("report.cache.read", path=str(path))
        try:
            with path.open() as handle:
                record = json.load(handle)
        except (json.JSONDecodeError, OSError):
            # A torn or garbage cache entry is simply skipped; the report
            # covers whatever is readable. Skipping *is* the recovery.
            faults.mark_recovered("report.cache.read", path=str(path))
            continue
        record["_key"] = path.stem
        records.append(record)
    return records


def _mean(values: list[float]) -> float | None:
    return float(np.mean(values)) if values else None


def build_report(config: ExperimentConfig | None = None) -> str:
    """Markdown reproduction report from whatever is cached right now."""
    config = config or ExperimentConfig()
    records = collect_cached_results(config)
    raw = [r for r in records if "(raw)" in r["system"]]
    deepmatcher = [r for r in records if r["system"] == "deepmatcher"]
    adapted = [r for r in records if "+" in r["system"]]

    lines = [
        "# Reproduction report",
        "",
        f"configuration: scale={config.scale:g}, "
        f"max_models={config.max_models}, seed={config.seed}",
        f"cached results: {len(records)} "
        f"({len(raw)} raw, {len(deepmatcher)} deepmatcher, "
        f"{len(adapted)} adapted)",
        "",
    ]

    dm_mean = _mean([r["f1"] for r in deepmatcher])
    if dm_mean is not None:
        lines.append(f"**DeepMatcher** mean F1: {dm_mean:.1f}")
    raw_by_system: dict[str, list[float]] = defaultdict(list)
    for r in raw:
        raw_by_system[r["system"].split("(")[0]].append(r["f1"])
    for system, values in sorted(raw_by_system.items()):
        lines.append(
            f"**{system} (raw)** mean F1: {_mean(values):.1f} "
            f"({len(values)} datasets)"
        )
    lines.append("")

    # Adapter deltas per system: mean(adapted over tokenizers/embedders)
    # minus the raw score, per dataset.
    raw_score = {
        (r["system"].split("(")[0], r["dataset"]): r["f1"] for r in raw
    }
    adapted_by: dict[tuple[str, str], list[float]] = defaultdict(list)
    for r in adapted:
        system = r["system"].split("+")[0]
        if r["_key"].endswith("_1"):  # 1h-budget cells only.
            adapted_by[(system, r["dataset"])].append(r["f1"])
    deltas: dict[str, list[float]] = defaultdict(list)
    for (system, dataset), values in adapted_by.items():
        base = raw_score.get((system, dataset))
        if base is not None:
            deltas[system].append(float(np.mean(values)) - base)
    if deltas:
        lines.append("## Adapter impact (mean adapted - raw, per system)")
        for system, values in sorted(deltas.items()):
            lines.append(
                f"* {system}: {_mean(values):+.1f} F1 over {len(values)} datasets"
            )
        lines.append("")

    # Budget effect on the best configuration.
    one_hour: dict[tuple[str, str], float] = {}
    six_hour: dict[tuple[str, str], float] = {}
    for r in adapted:
        if "hybrid+albert" not in r["system"]:
            continue
        system = r["system"].split("+")[0]
        key = (system, r["dataset"])
        if r["_key"].endswith("_6"):
            six_hour[key] = r["f1"]
        elif r["_key"].endswith("_1"):
            one_hour[key] = r["f1"]
    shared = sorted(set(one_hour) & set(six_hour))
    if shared:
        gains = [six_hour[k] - one_hour[k] for k in shared]
        lines.append("## Budget effect (hybrid+albert, 6h - 1h)")
        lines.append(
            f"* mean gain {float(np.mean(gains)):+.2f} F1 over "
            f"{len(shared)} (system, dataset) cells"
        )
        lines.append("")

    return "\n".join(lines)


def write_report(path: str | Path, config: ExperimentConfig | None = None) -> Path:
    """Render :func:`build_report` to ``path``.

    The write is an atomic ``report.store`` fault seam (temp file +
    rename under :func:`repro.faults.io_retry`): a crash mid-render never
    truncates a previously written report.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = build_report(config) + "\n"

    def _write() -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp", prefix=path.stem
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                faults.checkpoint("report.store.write", path=str(path))
                handle.write(text)
            faults.checkpoint("report.store.replace", path=str(path))
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)

    faults.io_retry(_write, "report.store")
    return path
