"""Experiment configuration, environment-overridable.

Environment knobs (all optional):

* ``REPRO_SCALE`` — dataset scale in (0, 1]; default 0.08 for benchmarks
  (the 450-row minimum keeps small datasets at full size regardless).
* ``REPRO_MAX_MODELS`` — AutoML candidate cap per fit; default 8.
* ``REPRO_CACHE_DIR`` — disk cache for experiment results; default
  ``.repro_cache`` under the working directory; ``off`` disables.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentConfig"]

_DEFAULT_SCALE = 0.08
_DEFAULT_MAX_MODELS = 8


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment tables."""

    scale: float = field(
        default_factory=lambda: _env_float("REPRO_SCALE", _DEFAULT_SCALE)
    )
    max_models: int = field(
        default_factory=lambda: _env_int("REPRO_MAX_MODELS", _DEFAULT_MAX_MODELS)
    )
    seed: int = 7
    budget_short: float = 1.0  # Table 2 / Table 5 "1h" budget.
    budget_long: float = 6.0  # Table 5 "6h" budget.

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {self.max_models}")

    @staticmethod
    def cache_dir() -> Path | None:
        """Directory of the on-disk result cache (None when disabled).

        Delegates to :func:`repro.config.cache_root`, the one sanctioned
        reader of ``REPRO_CACHE_DIR``.
        """
        from repro.config import cache_root

        return cache_root()

    def cache_key(self, *parts: object) -> str:
        """Stable cache key including every accuracy-relevant knob.

        ``ENCODE_VERSION`` is part of the key because cached results
        derive from embeddings: a result computed under an older encode
        discipline must never replay as a current one.
        """
        from repro.config import DATA_VERSION, ENCODE_VERSION

        core = (
            f"v{DATA_VERSION}",
            f"e{ENCODE_VERSION}",
            self.scale,
            self.max_models,
            self.seed,
        )
        return "_".join(str(p) for p in core + parts).replace("/", "-")
