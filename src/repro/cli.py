"""Command-line interface: ``repro-em``.

Subcommands::

    repro-em table <1|2|3|4|5> [--scale S] [--datasets A,B] Render a table
    repro-em datasets                                       List benchmarks
    repro-em match --dataset S-DA [--automl autosklearn]    Run one pipeline
    repro-em lint [paths] [--format json] [--baseline F]    Static analysis

Experiment results are cached under ``.repro_cache/`` (see
``repro.experiments.config``), so repeated invocations are incremental.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.benchmark import DATASET_NAMES

__all__ = ["main"]


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale in (0, 1]; defaults to REPRO_SCALE or 0.08",
    )
    parser.add_argument(
        "--datasets",
        type=str,
        default=None,
        help="comma-separated dataset subset (default: all twelve)",
    )


def _config(args: argparse.Namespace):
    from repro.experiments.config import ExperimentConfig

    if args.scale is not None:
        return ExperimentConfig(scale=args.scale)
    return ExperimentConfig()


def _datasets(args: argparse.Namespace) -> tuple[str, ...]:
    if args.datasets is None:
        return DATASET_NAMES
    requested = tuple(name.strip() for name in args.datasets.split(","))
    unknown = set(requested) - set(DATASET_NAMES)
    if unknown:
        raise SystemExit(f"unknown datasets: {', '.join(sorted(unknown))}")
    return requested


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_table1,
        run_table2,
        run_table3,
        run_table4,
        run_table5,
    )

    config = _config(args)
    datasets = _datasets(args)
    if args.number == 1:
        print(run_table1(scale=config.scale, generate=args.generate))
    elif args.number == 2:
        print(run_table2(config, datasets))
    elif args.number == 3:
        print(run_table3(config, datasets=datasets))
    elif args.number == 4:
        print(run_table4(config, datasets=datasets))
    else:
        print(run_table5(config, datasets=datasets))
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.experiments import run_table1

    print(run_table1())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    print(build_report(_config(args)))
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline, evaluate_matcher

    config = _config(args)
    splits = split_dataset(load_dataset(args.dataset, scale=config.scale))
    pipeline = EMPipeline(
        automl=args.automl,
        budget_hours=args.budget,
        seed=config.seed,
        max_models=config.max_models,
    )
    result = evaluate_matcher(pipeline, splits, system_name=args.automl)
    print(result)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-em`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-em",
        description="AutoML-for-Entity-Matching reproduction (EDBT 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p_table.add_argument(
        "--generate",
        action="store_true",
        help="table 1 only: measure generated data instead of the registry",
    )
    _add_scale(p_table)
    p_table.set_defaults(func=_cmd_table)

    p_list = sub.add_parser("datasets", help="list the benchmark datasets")
    p_list.set_defaults(func=_cmd_datasets)

    p_report = sub.add_parser(
        "report", help="summarize cached experiment results as markdown"
    )
    _add_scale(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_match = sub.add_parser("match", help="run one EM pipeline end to end")
    p_match.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    p_match.add_argument(
        "--automl", default="autosklearn",
        choices=("autosklearn", "autogluon", "h2o"),
    )
    p_match.add_argument("--budget", type=float, default=1.0)
    _add_scale(p_match)
    p_match.set_defaults(func=_cmd_match)

    p_lint = sub.add_parser(
        "lint", help="run the repro.analysis static-analysis rule pack"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
