"""Command-line interface: ``repro-em``.

Subcommands::

    repro-em table <1|2|3|4|5> [--scale S] [--datasets A,B] Render a table
    repro-em table 3 --jobs 8                               ...in parallel
    repro-em datasets                                       List benchmarks
    repro-em match --dataset S-DA [--automl autosklearn]    Run one pipeline
    repro-em trace --dataset S-DA                           Trace one pipeline
    repro-em trace --validate trace.jsonl                   Check a trace file
    repro-em lint [paths] [--format json] [--baseline F]    Static analysis
    repro-em chaos [--plans N] [--seed S] [--jobs N]        Crash-safety drill
    repro-em bench [--tier quick] [--only A,B] [--json]     Perf regression gate

``table``, ``match``, and ``trace`` accept ``--telemetry off|text|json``
(plus ``--trace-file PATH`` for ``json``): the run is recorded by
:mod:`repro.telemetry` and exported as a text report or a JSON-lines
trace conforming to ``docs/trace_schema.json``.

``table`` and ``match`` accept ``--jobs N``: the experiment grid fans
out over N worker processes (:mod:`repro.parallel`) and the merged
output is byte-identical to the serial run.

Experiment results are cached under ``.repro_cache/`` (see
``repro.experiments.config``), so repeated invocations are incremental.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.benchmark import DATASET_NAMES

__all__ = ["main"]


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale in (0, 1]; defaults to REPRO_SCALE or 0.08",
    )
    parser.add_argument(
        "--datasets",
        type=str,
        default=None,
        help="comma-separated dataset subset (default: all twelve)",
    )


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid (default 1 = "
        "serial; output is byte-identical either way)",
    )


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        choices=("off", "text", "json"),
        default="off",
        help="record the run with repro.telemetry and report it as a "
        "text trace or JSON lines (default: off)",
    )
    parser.add_argument(
        "--trace-file",
        type=str,
        default=None,
        help="with --telemetry json: write the trace here instead of stdout",
    )


def _run_with_telemetry(args: argparse.Namespace, run) -> int:
    """Execute ``run()`` under the requested telemetry mode and report."""
    mode = getattr(args, "telemetry", "off")
    if mode == "off":
        return run()
    from repro import telemetry
    from repro.telemetry import render_text, snapshot, write_jsonl

    with telemetry.recording() as recorder:
        code = run()
    trace = snapshot(recorder)
    if mode == "text":
        print(render_text(trace))
    else:
        target = args.trace_file if args.trace_file else sys.stdout
        write_jsonl(trace, target)
        if args.trace_file:
            print(f"trace written to {args.trace_file}")
    return code


def _config(args: argparse.Namespace):
    from repro.experiments.config import ExperimentConfig

    if args.scale is not None:
        return ExperimentConfig(scale=args.scale)
    return ExperimentConfig()


def _datasets(args: argparse.Namespace) -> tuple[str, ...]:
    if args.datasets is None:
        return DATASET_NAMES
    requested = tuple(name.strip() for name in args.datasets.split(","))
    unknown = set(requested) - set(DATASET_NAMES)
    if unknown:
        raise SystemExit(f"unknown datasets: {', '.join(sorted(unknown))}")
    return requested


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_table1,
        run_table2,
        run_table3,
        run_table4,
        run_table5,
    )

    config = _config(args)
    datasets = _datasets(args)
    jobs = max(1, args.jobs)

    def run() -> int:
        if args.number == 1:
            # Table 1 is dataset statistics — there is no grid to fan out.
            print(run_table1(scale=config.scale, generate=args.generate))
        elif jobs > 1:
            from repro.parallel import run_table_parallel

            print(run_table_parallel(args.number, config, datasets, jobs=jobs))
        elif args.number == 2:
            print(run_table2(config, datasets))
        elif args.number == 3:
            print(run_table3(config, datasets=datasets))
        elif args.number == 4:
            print(run_table4(config, datasets=datasets))
        else:
            print(run_table5(config, datasets=datasets))
        return 0

    return _run_with_telemetry(args, run)


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.experiments import run_table1

    print(run_table1())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    print(build_report(_config(args)))
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline, evaluate_matcher

    config = _config(args)

    def run() -> int:
        if args.jobs > 1:
            # One cell, executed in a worker process through the same
            # executor as table grids; identical result by determinism.
            from repro.matching.evaluation import EvaluationResult
            from repro.parallel import GridSpec, ParallelRunner

            grid = GridSpec.single_match(args.dataset, args.automl, args.budget)
            (cell,) = ParallelRunner(config, jobs=args.jobs).run(grid)
            print(EvaluationResult(**cell.record))
            return 0
        splits = split_dataset(load_dataset(args.dataset, scale=config.scale))
        pipeline = EMPipeline(
            automl=args.automl,
            budget_hours=args.budget,
            seed=config.seed,
            max_models=config.max_models,
        )
        result = evaluate_matcher(pipeline, splits, system_name=args.automl)
        print(result)
        return 0

    return _run_with_telemetry(args, run)


def _cmd_trace(args: argparse.Namespace) -> int:
    """One traced pipeline run — or validation/rendering of a trace file."""
    if args.validate is not None:
        from repro.telemetry import validate_trace

        errors = validate_trace(args.validate)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            print(
                f"{args.validate}: INVALID ({len(errors)} error(s))",
                file=sys.stderr,
            )
            return 1
        print(f"{args.validate}: valid trace")
        return 0

    if args.load is not None:
        from repro.telemetry import read_jsonl, render_text

        print(render_text(read_jsonl(args.load)))
        return 0

    if args.dataset is None:
        print("error: trace needs --dataset (or --validate/--load FILE)",
              file=sys.stderr)
        return 2

    from repro import telemetry
    from repro.adapter import EMAdapter
    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline, evaluate_matcher
    from repro.telemetry import render_text, snapshot, write_jsonl

    config = _config(args)
    with telemetry.recording() as recorder:
        splits = split_dataset(load_dataset(args.dataset, scale=config.scale))
        pipeline = EMPipeline(
            adapter=EMAdapter(args.tokenizer, args.embedder, "mean"),
            automl=args.automl,
            budget_hours=args.budget,
            seed=config.seed,
            max_models=config.max_models,
        )
        result = evaluate_matcher(
            pipeline,
            splits,
            system_name=f"{args.automl}+{args.tokenizer}+{args.embedder}",
        )
    trace = snapshot(recorder)
    print(render_text(trace))
    print(f"\n{result}")
    if args.json is not None:
        write_jsonl(trace, args.json)
        print(f"trace written to {args.json}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.cli import run_bench

    return run_bench(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import telemetry
    from repro.serving import MatchDaemon, MatchEngine

    model_path = Path(args.model)
    config = _config(args)
    if args.fit and not model_path.exists():
        from repro.data import load_dataset, split_dataset
        from repro.matching import EMPipeline
        from repro.persistence import save_model

        print(f"fitting a pipeline for {args.dataset} -> {model_path}")
        splits = split_dataset(
            load_dataset(args.dataset, scale=config.scale)
        )
        pipeline = EMPipeline(
            automl=args.automl,
            seed=config.seed,
            max_models=config.max_models,
        )
        pipeline.fit(splits.train, splits.valid)
        save_model(pipeline, model_path)

    # The daemon reports through telemetry for its whole lifetime; the
    # hot path records metrics only (no spans), so the recorder stays
    # bounded however long the process serves.
    telemetry.enable()
    try:
        engine = MatchEngine(model_path, args.dataset)
        with MatchDaemon(
            engine,
            (args.host, args.port),
            max_batch_pairs=args.max_batch_pairs,
            max_delay_seconds=args.max_delay_ms / 1000.0,
            queue_depth=args.queue_depth,
        ) as daemon:
            if args.port_file:
                Path(args.port_file).write_text(f"{daemon.port}\n")
            print(
                f"serving {args.dataset} model {model_path} on "
                f"http://{args.host}:{daemon.port}"
            )
            try:
                daemon.serve_forever()
            except KeyboardInterrupt:
                pass
        print("daemon stopped")
        return 0
    finally:
        telemetry.disable()


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.config import GLOBAL_SEED
    from repro.serving import run_loadtest

    report = run_loadtest(
        args.host,
        args.port,
        args.dataset,
        requests=args.requests,
        concurrency=args.concurrency,
        pairs_per_request=args.pairs_per_request,
        seed=GLOBAL_SEED if args.seed is None else args.seed,
        scale=args.scale,
    )
    rendered = json_module.dumps(report, indent=2, sort_keys=True)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(rendered + "\n")
        print(f"report written to {args.json}")
    print(rendered)
    return 1 if report["errors"] else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.parallel import run_chaos

    config = _config(args)
    # Chaos drills a small grid many times over; default to one dataset
    # rather than the full twelve the other verbs assume.
    datasets = _datasets(args) if args.datasets is not None else ("S-FZ",)
    report = run_chaos(
        table=args.table,
        config=config,
        datasets=datasets,
        plans=args.plans,
        jobs=max(1, args.jobs),
        seed=args.seed,
    )
    print(report.render())
    if args.trace_file and report.trace is not None:
        from repro.telemetry import write_jsonl

        write_jsonl(report.trace, args.trace_file)
        print(f"trace written to {args.trace_file}")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-em`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-em",
        description="AutoML-for-Entity-Matching reproduction (EDBT 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p_table.add_argument(
        "--generate",
        action="store_true",
        help="table 1 only: measure generated data instead of the registry",
    )
    _add_scale(p_table)
    _add_jobs(p_table)
    _add_telemetry(p_table)
    p_table.set_defaults(func=_cmd_table)

    p_list = sub.add_parser("datasets", help="list the benchmark datasets")
    p_list.set_defaults(func=_cmd_datasets)

    p_report = sub.add_parser(
        "report", help="summarize cached experiment results as markdown"
    )
    _add_scale(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_match = sub.add_parser("match", help="run one EM pipeline end to end")
    p_match.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    p_match.add_argument(
        "--automl", default="autosklearn",
        choices=("autosklearn", "autogluon", "h2o"),
    )
    p_match.add_argument("--budget", type=float, default=1.0)
    _add_scale(p_match)
    _add_jobs(p_match)
    _add_telemetry(p_match)
    p_match.set_defaults(func=_cmd_match)

    p_trace = sub.add_parser(
        "trace",
        help="run one EM pipeline with telemetry on and print the span "
        "tree, per-stage rollups, and the AutoML trial ledger",
    )
    p_trace.add_argument("--dataset", choices=DATASET_NAMES, default=None)
    p_trace.add_argument(
        "--automl", default="autosklearn",
        choices=("autosklearn", "autogluon", "h2o"),
    )
    p_trace.add_argument(
        "--tokenizer", default="hybrid",
        choices=("unstructured", "attr", "hybrid"),
    )
    p_trace.add_argument(
        "--embedder", default="albert",
        choices=("bert", "dbert", "albert", "roberta", "xlnet"),
    )
    p_trace.add_argument("--budget", type=float, default=1.0)
    p_trace.add_argument(
        "--json", type=str, default=None,
        help="also write the trace as JSON lines to this file",
    )
    p_trace.add_argument(
        "--validate", type=str, default=None, metavar="FILE",
        help="validate an existing JSONL trace against "
        "docs/trace_schema.json and exit",
    )
    p_trace.add_argument(
        "--load", type=str, default=None, metavar="FILE",
        help="render an existing JSONL trace as text and exit",
    )
    _add_scale(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_lint = sub.add_parser(
        "lint", help="run the repro.analysis static-analysis rule pack"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_bench = sub.add_parser(
        "bench",
        help="run the registered benchmarks and gate each metric against "
        "its committed BENCH_<name>.json baseline",
    )
    from repro.bench.cli import add_bench_arguments

    add_bench_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the online matching daemon: load a saved model once "
        "and answer POST /match over HTTP with micro-batched predictions",
    )
    p_serve.add_argument(
        "--model", required=True,
        help="model file written by repro.persistence.save_model",
    )
    p_serve.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral; see --port-file)",
    )
    p_serve.add_argument(
        "--port-file", type=str, default=None,
        help="write the bound port here once listening (for scripts "
        "that start the daemon with --port 0)",
    )
    p_serve.add_argument(
        "--fit", action="store_true",
        help="if the model file does not exist, fit a pipeline on the "
        "dataset and save it there first",
    )
    p_serve.add_argument(
        "--automl", default="autosklearn",
        choices=("autosklearn", "autogluon", "h2o"),
        help="AutoML system for --fit (default autosklearn)",
    )
    p_serve.add_argument(
        "--max-batch-pairs", type=int, default=64,
        help="flush a micro-batch once this many pairs wait (default 64)",
    )
    p_serve.add_argument(
        "--max-delay-ms", type=float, default=5.0,
        help="longest a request waits for batch co-travellers (default 5)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=256,
        help="queued requests beyond which the daemon sheds load "
        "with 503 (default 256)",
    )
    p_serve.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale for --fit (defaults to REPRO_SCALE or 0.08)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_loadtest = sub.add_parser(
        "loadtest",
        help="drive a running serve daemon with a deterministic seeded "
        "request stream and report p50/p99 latency and throughput",
    )
    p_loadtest.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    p_loadtest.add_argument("--host", default="127.0.0.1")
    p_loadtest.add_argument("--port", type=int, required=True)
    p_loadtest.add_argument(
        "--requests", type=int, default=100,
        help="total requests to issue (default 100)",
    )
    p_loadtest.add_argument(
        "--concurrency", type=int, default=4,
        help="closed-loop worker threads (default 4)",
    )
    p_loadtest.add_argument(
        "--pairs-per-request", type=int, default=2,
        help="entity pairs per request body (default 2)",
    )
    p_loadtest.add_argument(
        "--seed", type=int, default=None,
        help="request-stream seed (default: the substrate seed)",
    )
    p_loadtest.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale for request sampling (defaults to "
        "REPRO_SCALE or 0.08)",
    )
    p_loadtest.add_argument(
        "--json", type=str, default=None,
        help="also write the JSON report to this file",
    )
    p_loadtest.set_defaults(func=_cmd_loadtest)

    p_chaos = sub.add_parser(
        "chaos",
        help="crash-safety drill: rerun a table grid under seeded fault "
        "plans (repro.faults) and diff against the fault-free output",
    )
    p_chaos.add_argument(
        "--table", type=int, choices=(2, 3, 4, 5), default=2,
        help="table grid to drill (default 2)",
    )
    p_chaos.add_argument(
        "--plans", type=int, default=3,
        help="number of seeded fault plans to run (default 3)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=None,
        help="fault-plan seed override (default: the substrate seed)",
    )
    p_chaos.add_argument(
        "--trace-file", type=str, default=None,
        help="write the last plan's telemetry trace here as JSON lines",
    )
    _add_scale(p_chaos)
    _add_jobs(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
