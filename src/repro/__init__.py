"""repro — reproduction of "Automated Machine Learning for Entity
Matching Tasks" (Paganelli et al., EDBT 2021).

The package builds, from scratch on numpy/scipy:

* the 12-dataset Magellan-style EM benchmark (:mod:`repro.data`);
* simulated pre-trained transformer embedders (:mod:`repro.transformers`);
* a classical ML zoo and three AutoML systems in the style of
  AutoSklearn, AutoGluon and H2OAutoML (:mod:`repro.ml`,
  :mod:`repro.automl`);
* the paper's contribution, the **EM adapter** (:mod:`repro.adapter`);
* the DeepMatcher (Hybrid) baseline and the end-to-end
  :class:`~repro.matching.EMPipeline` (:mod:`repro.matching`);
* an experiment harness regenerating every table of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline

    splits = split_dataset(load_dataset("S-DA", scale=0.1))
    pipeline = EMPipeline(automl="autosklearn", budget_hours=1.0)
    pipeline.fit(splits.train, splits.valid)
    print("test F1:", pipeline.score(splits.test))
"""

from repro.adapter import EMAdapter
from repro.data import DATASET_NAMES, load_dataset, split_dataset
from repro.matching import DeepMatcherHybrid, EMPipeline
from repro.persistence import PersistenceError, load_model, save_model

__version__ = "1.0.0"

__all__ = [
    "DATASET_NAMES",
    "DeepMatcherHybrid",
    "EMAdapter",
    "EMPipeline",
    "PersistenceError",
    "__version__",
    "load_dataset",
    "load_model",
    "save_model",
    "split_dataset",
]
