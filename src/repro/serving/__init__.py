"""Online serving for fitted matchers: ``repro-em serve`` (ROADMAP item 2).

The paper's pipeline trains offline; this package is the online half —
a persistent daemon that loads a saved :class:`repro.matching.EMPipeline`
once (via :mod:`repro.persistence`), keeps the content-addressed
entity-embedding store warm across requests, and answers match queries
over HTTP using only the standard library.

Three pieces:

* :class:`MatchEngine` (:mod:`repro.serving.engine`) — owns the loaded
  model, the request schema, and a serving-configured adapter
  (``cache=False, entity_cache=True``: the pair-matrix memo keys on
  dataset pair-id fingerprints and would collide across synthetic
  requests, while the entity store is content-addressed and therefore
  safe and warm). Supports atomic in-place model reload.
* :class:`MicroBatcher` (:mod:`repro.serving.batcher`) — a bounded
  queue drained by one worker thread that fuses concurrently waiting
  requests into a single vectorized transform + predict call. Because
  encoding is exact-length-bucketed (``ENCODE_VERSION`` 2), fused and
  one-at-a-time serving produce bit-identical predictions.
* :class:`MatchDaemon` (:mod:`repro.serving.daemon`) — a
  ``ThreadingHTTPServer`` exposing ``POST /match``, ``GET /healthz``,
  ``GET /metrics``, ``POST /reload`` and ``POST /shutdown``, with
  :mod:`repro.faults` seams on the request-read / response-write /
  model-load I/O boundaries.

:func:`run_loadtest` (:mod:`repro.serving.loadtest`) drives a running
daemon with a deterministic seeded request stream and reports client
latency percentiles plus the server's own telemetry.
"""

from repro.serving.batcher import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    MicroBatcher,
)
from repro.serving.daemon import MatchDaemon
from repro.serving.engine import MatchEngine
from repro.serving.errors import (
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.loadtest import build_requests, run_loadtest

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "MatchDaemon",
    "MatchEngine",
    "MicroBatcher",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServingError",
    "build_requests",
    "run_loadtest",
]
