"""Errors raised by the serving layer."""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = ["ServingError", "ServerOverloadedError", "ServerClosedError"]


class ServingError(ReproError):
    """The serving daemon cannot satisfy a request or (re)load a model."""


class ServerOverloadedError(ServingError):
    """The micro-batch queue is full; the caller should shed or retry."""


class ServerClosedError(ServingError):
    """The daemon is shutting down and no longer accepts requests."""
