"""The HTTP face of the serving layer: a stdlib ThreadingHTTPServer.

Endpoints (all bodies JSON):

* ``POST /match`` — ``{"pairs": [{"left": {...}, "right": {...}}, ...]}``
  → ``{"probabilities": [...], "labels": [...], "model_generation": N}``.
  Entities are validated against the engine's schema (400 on mismatch);
  the prediction goes through the :class:`~repro.serving.batcher.MicroBatcher`,
  so concurrent requests fuse into one vectorized call.
* ``GET /healthz`` — liveness plus the installed model generation.
* ``GET /metrics`` — every counter/gauge of the daemon's telemetry
  recorder plus histogram summaries with p50/p99 (the loadtest and the
  CI smoke job read fault accounting and latency from here).
* ``POST /reload`` — atomically re-read the model file; on failure the
  old model keeps serving and the response is 500.
* ``POST /shutdown`` — acknowledge, then stop the server from a side
  thread (``shutdown()`` deadlocks when called on a handler thread).

Fault seams: the request-body read and response write cross
``serving.request.read`` / ``serving.response.write`` checkpoints. The
socket is not retryable the way a file write is — the client is waiting
— so an injected fault is settled in-handler: counted recovered and
answered with 503 (when the response socket itself is the faulted seam,
recovery is the count alone; the client sees a dropped connection).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import faults, telemetry
from repro.exceptions import SchemaError
from repro.faults import InjectedFaultError
from repro.persistence import PersistenceError
from repro.serving.batcher import LATENCY_BUCKETS, MicroBatcher
from repro.serving.engine import MatchEngine
from repro.serving.errors import (
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)

__all__ = ["MatchDaemon"]


class MatchDaemon(ThreadingHTTPServer):
    """One engine + one batcher behind a threaded stdlib HTTP server.

    Use as a context manager (or call :meth:`close`) so the batcher's
    worker thread is always joined::

        engine = MatchEngine("model.pkl", "S-FZ")
        with MatchDaemon(engine, ("127.0.0.1", 0)) as daemon:
            threading.Thread(target=daemon.serve_forever).start()
            ...  # daemon.port is now bound
            daemon.stop()
    """

    daemon_threads = True

    def __init__(
        self,
        engine: MatchEngine,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_batch_pairs: int = 64,
        max_delay_seconds: float = 0.005,
        queue_depth: int = 256,
    ) -> None:
        super().__init__(address, _MatchHandler)
        self.engine = engine
        self.batcher = MicroBatcher(
            engine.match_pairs,
            max_batch_pairs=max_batch_pairs,
            max_delay_seconds=max_delay_seconds,
            queue_depth=queue_depth,
        )

    @property
    def port(self) -> int:
        return self.server_address[1]

    def stop(self) -> None:
        """Unblock ``serve_forever`` from any thread (idempotent)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        """Release the socket and drain the batcher."""
        self.batcher.close()
        self.server_close()

    def __exit__(self, *exc_info) -> None:
        self.batcher.close()
        super().__exit__(*exc_info)

    def metrics_payload(self) -> dict:
        """Counters, gauges, and histogram summaries of the recorder."""
        recorder = telemetry.active()
        if recorder is None:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        metrics = recorder.metrics
        histograms = {}
        for name, hist in metrics.histograms.items():
            histograms[name] = {
                "count": hist.total,
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p99": hist.percentile(99),
            }
        return {
            "counters": {c.name: c.value for c in metrics.counters.values()},
            "gauges": {g.name: g.value for g in metrics.gauges.values()},
            "histograms": histograms,
        }


class _MatchHandler(BaseHTTPRequestHandler):
    server: MatchDaemon  # narrowed from socketserver.BaseServer

    # The stdlib handler logs every request to stderr; a serving daemon
    # reports through telemetry instead (OBS001). Callers pass the
    # format positionally, so the parameter rename is invisible.
    def log_message(self, fmt: str, *args) -> None:
        pass

    # ------------------------------------------------------------ routes

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._respond(
                200,
                {
                    "status": "ok",
                    "dataset": self.server.engine.dataset_name,
                    "model_generation": self.server.engine.generation,
                },
            )
        elif self.path == "/metrics":
            self._respond(200, self.server.metrics_payload())
        else:
            self._respond(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        if self.path == "/match":
            self._handle_match()
        elif self.path == "/reload":
            self._handle_reload()
        elif self.path == "/shutdown":
            self._respond(200, {"status": "shutting down"})
            self.server.stop()
        else:
            self._respond(404, {"error": f"unknown path {self.path}"})

    # ---------------------------------------------------------- handlers

    def _handle_match(self) -> None:
        start = telemetry.wallclock()
        telemetry.counter("serving.request.count").inc()
        body = self._read_body()
        if body is None:
            return  # already answered 503; fault settled
        try:
            payload = json.loads(body)
            pairs = payload["pairs"]
            if not isinstance(pairs, list):
                raise TypeError("'pairs' must be a list")
            future = self.server.batcher.submit(pairs)
            probabilities, labels = future.result()
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            SchemaError,
        ) as exc:
            telemetry.counter("serving.request.errors").inc()
            self._respond(400, {"error": str(exc)})
            return
        except ServerOverloadedError as exc:
            telemetry.counter("serving.request.shed").inc()
            self._respond(503, {"error": str(exc)})
            return
        except ServerClosedError as exc:
            telemetry.counter("serving.request.errors").inc()
            self._respond(503, {"error": str(exc)})
            return
        self._respond(
            200,
            {
                "probabilities": [float(p) for p in probabilities],
                "labels": [int(label) for label in labels],
                "model_generation": self.server.engine.generation,
            },
        )
        telemetry.histogram("serving.request.seconds", LATENCY_BUCKETS).observe(
            telemetry.wallclock() - start
        )

    def _handle_reload(self) -> None:
        try:
            generation = self.server.engine.reload()
        except (PersistenceError, ServingError) as exc:
            telemetry.counter("serving.reload.errors").inc()
            self._respond(500, {"error": str(exc)})
            return
        telemetry.counter("serving.reload.count").inc()
        self._respond(200, {"model_generation": generation})

    # ---------------------------------------------------------------- io

    def _read_body(self) -> bytes | None:
        """Read the request body through the ``serving.request.read`` seam.

        The socket read is not retryable (the bytes are gone), so an
        injected fault is settled here: counted recovered, client gets
        503. Returns None when the request was already answered.
        """
        try:
            faults.checkpoint(
                "serving.request.read", path=self.path
            )
            length = int(self.headers.get("Content-Length", 0))
            return self.rfile.read(length)
        except InjectedFaultError as exc:
            telemetry.counter("faults.recovered.io").inc()
            telemetry.counter("serving.request.errors").inc()
            self._respond(503, {"error": f"transient read failure: {exc}"})
            # The unread body would corrupt keep-alive framing.
            self.close_connection = True
            return None

    def _respond(self, status: int, payload: dict) -> None:
        """Write a JSON response through ``serving.response.write``.

        A fault on the response socket cannot be answered over that
        same socket; settling is the recovered count plus dropping the
        connection — the daemon itself stays healthy.
        """
        body = json.dumps(payload).encode("utf-8")
        try:
            faults.checkpoint("serving.response.write", path=self.path)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except InjectedFaultError:
            telemetry.counter("faults.recovered.io").inc()
            telemetry.counter("serving.response.dropped").inc()
            self.close_connection = True
