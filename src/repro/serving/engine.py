"""The serving-side model holder: load once, predict many, reload atomically.

:class:`MatchEngine` is the piece of the daemon that knows about entity
matching. It loads a saved :class:`repro.matching.EMPipeline` through the
``serving.model.load`` fault seam (retried by
:func:`repro.faults.io_retry` like every other disk boundary), derives
the request schema from the dataset registry without generating any
data, and answers ``match_pairs`` calls with probabilities and
threshold-tuned labels.

Two serving-specific decisions live here:

* **Adapter reconfiguration.** The fitted pipeline's adapter may have
  the pair-matrix memo enabled; that cache keys on dataset pair-id
  fingerprints, which synthetic per-request ids would collide on. The
  engine therefore rebuilds the adapter from the *same component
  instances* (tokenizer, embedder, combiner — so encoder identity and
  content digests are unchanged) with ``cache=False,
  entity_cache=True``: no matrix memo, full reuse of the
  content-addressed entity store across requests.
* **Atomic reload.** ``reload()`` loads the file fresh and swaps the
  installed model under a lock only after the load fully succeeded, so
  a corrupt or incompatible file on disk can never take down a healthy
  daemon — the old model keeps serving and the caller gets the error.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro import faults, telemetry
from repro.adapter import EMAdapter
from repro.data.benchmark import dataset_spec
from repro.data.schema import EMDataset, PairRecord
from repro.persistence import load_model
from repro.serving.errors import ServingError

__all__ = ["MatchEngine"]


class MatchEngine:
    """A loaded matcher plus the schema its requests must satisfy.

    Parameters
    ----------
    model_path:
        A file written by :func:`repro.persistence.save_model` holding a
        fitted :class:`~repro.matching.EMPipeline`.
    dataset_name:
        Registry name (e.g. ``"S-FZ"``) whose schema incoming entity
        dicts are validated against. Resolved through
        :func:`repro.data.benchmark.dataset_spec` without generating
        the dataset itself.
    """

    def __init__(self, model_path: str | Path, dataset_name: str) -> None:
        spec = dataset_spec(dataset_name)
        self.dataset_name = dataset_name
        self._schema = spec.make_generator().schema
        self._dataset_type = spec.dataset_type
        self._model_path = Path(model_path)
        self._lock = threading.Lock()
        self.generation = 0
        self._install(self._load())

    # ------------------------------------------------------------ loading

    def _load(self):
        """Read the model file through the ``serving.model.load`` seam.

        Transient filesystem failures are retried; corrupt bytes
        surface as :class:`~repro.persistence.PersistenceError` from
        :func:`~repro.persistence.load_model` (not an OSError, so the
        retry wrapper propagates them immediately).
        """

        def _read():
            faults.checkpoint("serving.model.load", path=str(self._model_path))
            return load_model(self._model_path)

        try:
            return faults.io_retry(_read, "serving.model.load")
        except OSError as exc:
            raise ServingError(
                f"cannot read model file {self._model_path}: {exc}"
            ) from exc

    def _install(self, pipeline) -> None:
        adapter = getattr(pipeline, "adapter", None)
        automl = getattr(pipeline, "automl", None)
        if adapter is None or automl is None:
            raise ServingError(
                f"{self._model_path} does not hold a servable pipeline "
                f"(got {type(pipeline).__name__}; need adapter + automl)"
            )
        serving_adapter = EMAdapter(
            adapter.tokenizer,
            adapter.embedder,
            adapter.combiner,
            cache=False,
            entity_cache=True,
        )
        with self._lock:
            self._adapter = serving_adapter
            self._automl = automl
            self.generation += 1
        telemetry.gauge("serving.model.generation").set(self.generation)

    def reload(self) -> int:
        """Re-read the model file and swap it in; returns the generation.

        The swap happens only after the load fully succeeded — on any
        failure (missing file, corrupt bytes, version mismatch, wrong
        object) the previously installed model keeps serving and the
        exception propagates to the caller.
        """
        self._install(self._load())
        return self.generation

    # --------------------------------------------------------- predicting

    @property
    def schema(self):
        """The entity schema requests are validated against."""
        return self._schema

    def dataset_for(self, pairs: list[dict]) -> EMDataset:
        """Wrap request entity dicts as a schema-validated dataset.

        ``pairs`` holds ``{"left": {...}, "right": {...}}`` dicts;
        labels are unknown at serving time, so every record carries a
        placeholder 0. Schema violations raise
        :class:`~repro.exceptions.SchemaError` (HTTP 400 upstream).
        """
        records = [
            PairRecord(i, dict(pair["left"]), dict(pair["right"]), 0)
            for i, pair in enumerate(pairs)
        ]
        return EMDataset(
            self.dataset_name, self._schema, records, self._dataset_type
        )

    def match_pairs(self, pairs: list[dict]) -> tuple[np.ndarray, np.ndarray]:
        """Match probabilities and thresholded labels for ``pairs``.

        One vectorized adapter transform plus one predict call; the
        micro-batcher fuses many requests into a single invocation.
        Because encoding is exact-length-bucketed, the result rows are
        bit-identical regardless of batch composition.
        """
        if not pairs:
            return (
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.int64),
            )
        with self._lock:
            adapter, automl = self._adapter, self._automl
        features = adapter.transform(self.dataset_for(pairs))
        probabilities = automl.predict_proba(features)[:, 1]
        labels = automl.predict(features)
        return probabilities, labels
