"""Micro-batching: fuse concurrently waiting requests into one predict.

The transformer forward and the AutoML predict are both vectorized —
one call on 32 pairs costs far less than 32 calls on one pair. The
:class:`MicroBatcher` exploits that: handler threads ``submit()`` their
pairs into a bounded queue and block on a future; a single worker
thread drains the queue, waits up to ``max_delay_seconds`` for more
arrivals (or until ``max_batch_pairs`` accumulate), concatenates
everything into one ``predict_fn`` call, and slices the result back to
each waiting future.

Fusion never changes the answer: encoding is exact-length-bucketed
(every vector is independent of batch composition) and prediction is
row-wise, so the sliced rows are bit-identical to serving each request
alone. The daemon's tests pin that equality.

Overload is explicit, not silent: a full queue raises
:class:`~repro.serving.errors.ServerOverloadedError` at ``submit`` time
(the daemon answers 503) instead of letting latency grow without bound.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable

import numpy as np

from repro import telemetry
from repro.serving.errors import ServerClosedError, ServerOverloadedError

__all__ = ["BATCH_SIZE_BUCKETS", "LATENCY_BUCKETS", "MicroBatcher"]

#: Histogram bounds for request/batch latencies, in seconds. The shared
#: ``SECONDS_BUCKETS`` start at 1ms — too coarse for an in-process
#: serving hot path whose p50 sits well under that — so the serving
#: metrics use a finer ladder from 100µs to 5s.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: Histogram bounds for per-flush batch sizes (requests fused, pairs
#: fused) — powers of two up to the default queue depth.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Queue sentinel that tells the worker thread to exit.
_SHUTDOWN = None


class MicroBatcher:
    """A bounded request queue drained into fused predict calls.

    Parameters
    ----------
    predict_fn:
        ``pairs -> (probabilities, labels)``; must be row-wise so fused
        results can be sliced back per request (``MatchEngine.match_pairs``).
    max_batch_pairs:
        Flush as soon as at least this many pairs are waiting.
    max_delay_seconds:
        Longest a request waits for co-travellers before the batch is
        flushed anyway — the latency cost of fusion is bounded by this.
    queue_depth:
        Maximum queued *requests*; beyond it ``submit`` raises
        :class:`ServerOverloadedError`.
    """

    def __init__(
        self,
        predict_fn: Callable[[list[dict]], tuple[np.ndarray, np.ndarray]],
        max_batch_pairs: int = 64,
        max_delay_seconds: float = 0.005,
        queue_depth: int = 256,
    ) -> None:
        if max_batch_pairs < 1:
            raise ValueError("max_batch_pairs must be >= 1")
        if max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be >= 0")
        self._predict_fn = predict_fn
        self._max_batch_pairs = max_batch_pairs
        self._max_delay = max_delay_seconds
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._closed = threading.Event()
        self._worker = threading.Thread(
            target=self._drain, name="repro-serving-batcher", daemon=True
        )
        self._worker.start()

    # ----------------------------------------------------------- clients

    def submit(self, pairs: list[dict]) -> Future:
        """Enqueue one request; the future resolves to (probas, labels).

        Raises :class:`ServerClosedError` after :meth:`close` and
        :class:`ServerOverloadedError` when the queue is full. An empty
        request resolves immediately — there is nothing to batch.
        """
        if self._closed.is_set():
            raise ServerClosedError("batcher is closed")
        future: Future = Future()
        if not pairs:
            future.set_result(self._predict_fn([]))
            return future
        try:
            self._queue.put_nowait((list(pairs), future))
        except queue.Full:
            telemetry.counter("serving.batch.rejected").inc()
            raise ServerOverloadedError(
                f"micro-batch queue is full ({self._queue.maxsize} requests)"
            ) from None
        # A request that raced past the flag check while close() drained
        # the queue would hang forever; fail it like any other late one.
        if self._closed.is_set() and not future.done():
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            if not future.done():
                future.set_exception(ServerClosedError("batcher is closed"))
        return future

    def close(self) -> None:
        """Stop accepting work, flush what is queued, join the worker.

        Idempotent. Requests already queued are still answered; anything
        submitted afterwards raises :class:`ServerClosedError`.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_SHUTDOWN)
        self._worker.join()
        # Fail anything that slipped in behind the sentinel.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                _pairs, future = item
                if not future.done():
                    future.set_exception(
                        ServerClosedError("batcher is closed")
                    )

    # ------------------------------------------------------------ worker

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            total = len(item[0])
            deadline = time.monotonic() + self._max_delay
            while total < self._max_batch_pairs:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    self._flush(batch)
                    return
                batch.append(nxt)
                total += len(nxt[0])
            self._flush(batch)

    def _flush(self, batch: list[tuple[list[dict], Future]]) -> None:
        """Run one fused predict and distribute slices to the futures."""
        if not batch:
            return
        fused: list[dict] = []
        for pairs, _future in batch:
            fused.extend(pairs)
        start = time.perf_counter()
        try:
            probabilities, labels = self._predict_fn(fused)
        except Exception as exc:  # repro: noqa[GEN003] - any predict failure is forwarded to every waiting future, same boundary as the parallel executor
            for _pairs, future in batch:
                if not future.done():
                    future.set_exception(exc)
            telemetry.counter("serving.batch.errors").inc()
            return
        elapsed = time.perf_counter() - start
        telemetry.counter("serving.batch.flushes").inc()
        telemetry.counter("serving.batch.fused_pairs").inc(len(fused))
        telemetry.histogram(
            "serving.batch.requests", BATCH_SIZE_BUCKETS
        ).observe(float(len(batch)))
        telemetry.histogram("serving.batch.seconds", LATENCY_BUCKETS).observe(
            elapsed
        )
        offset = 0
        for pairs, future in batch:
            stop = offset + len(pairs)
            if not future.done():
                future.set_result(
                    (probabilities[offset:stop], labels[offset:stop])
                )
            offset = stop
