"""Closed-loop load generator for a running match daemon.

``repro-em loadtest`` drives ``POST /match`` with a deterministic,
seeded request stream: pairs are drawn (with replacement) from the
named benchmark dataset by a :func:`repro.config.rng_for` stream, so
two loadtests with the same seed issue byte-identical request bodies.
Concurrency is closed-loop — ``concurrency`` worker threads each keep
exactly one request in flight — which makes throughput a measurement,
not a target.

The report combines both vantage points: client-side latency
percentiles computed from the exact per-request timings, and the
server's own ``/metrics`` payload (bucketed histograms, batch fusion
counters, fault accounting) fetched after the run.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
from typing import Any

from repro import telemetry
from repro.config import GLOBAL_SEED, rng_for
from repro.data import load_dataset
from repro.serving.errors import ServingError

__all__ = ["build_requests", "run_loadtest"]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact percentile of pre-sorted client timings (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _entity_payload(entity: dict, schema) -> dict:
    """A JSON-safe copy of one entity dict (numpy scalars → python)."""
    payload = {}
    for attribute in schema.attributes:
        value = entity[attribute.name]
        if value is None or isinstance(value, (str, int, float)):
            payload[attribute.name] = value
        else:
            payload[attribute.name] = float(value)
    return payload


def build_requests(
    dataset_name: str,
    requests: int,
    pairs_per_request: int,
    seed: int = GLOBAL_SEED,
    scale: float | None = None,
) -> list[bytes]:
    """Deterministic request bodies sampled from a benchmark dataset."""
    kwargs = {} if scale is None else {"scale": scale}
    dataset = load_dataset(dataset_name, **kwargs)
    rng = rng_for("serving.loadtest", dataset_name, requests, seed=seed)
    bodies = []
    for _ in range(requests):
        indices = rng.integers(0, len(dataset), size=pairs_per_request)
        pairs = [
            {
                "left": _entity_payload(dataset[int(i)].left, dataset.schema),
                "right": _entity_payload(dataset[int(i)].right, dataset.schema),
            }
            for i in indices
        ]
        bodies.append(json.dumps({"pairs": pairs}).encode("utf-8"))
    return bodies


def _fetch_json(host: str, port: int, method: str, path: str,
                body: bytes | None = None, timeout: float = 30.0) -> dict:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        if response.status != 200:
            raise ServingError(
                f"{method} {path} -> {response.status}: "
                f"{payload.get('error', payload)}"
            )
        return payload
    finally:
        connection.close()


def run_loadtest(
    host: str,
    port: int,
    dataset_name: str,
    requests: int = 100,
    concurrency: int = 4,
    pairs_per_request: int = 2,
    seed: int = GLOBAL_SEED,
    scale: float | None = None,
    timeout: float = 60.0,
) -> dict[str, Any]:
    """Drive the daemon at ``host:port`` and report latency + throughput.

    Returns a JSON-able report::

        {"requests": N, "errors": E, "error_messages": [...],
         "duration_seconds": ..., "requests_per_second": ...,
         "client_latency_ms": {"p50": ..., "p99": ..., "mean": ...},
         "server_metrics": {...}}   # the daemon's /metrics payload

    ``errors`` counts requests that failed or returned non-200; callers
    (the CLI, the CI smoke job) treat any nonzero value as failure.
    """
    bodies = build_requests(
        dataset_name, requests, pairs_per_request, seed=seed, scale=scale
    )
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    cursor = iter(range(len(bodies)))

    def _worker() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                start = telemetry.wallclock()
                try:
                    connection.request(
                        "POST",
                        "/match",
                        body=bodies[index],
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode("utf-8"))
                    if response.status != 200:
                        raise ServingError(
                            f"request {index} -> {response.status}: "
                            f"{payload.get('error', payload)}"
                        )
                    if len(payload["probabilities"]) != len(
                        json.loads(bodies[index])["pairs"]
                    ):
                        raise ServingError(
                            f"request {index}: response cardinality mismatch"
                        )
                except Exception as exc:  # repro: noqa[GEN003] - socket, JSON, or server failures all tally as one request error
                    with lock:
                        errors.append(str(exc))
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    continue
                elapsed = telemetry.wallclock() - start
                with lock:
                    latencies.append(elapsed)
        finally:
            connection.close()

    workers = [
        threading.Thread(target=_worker, name=f"repro-loadtest-{i}")
        for i in range(max(1, concurrency))
    ]
    started = telemetry.wallclock()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    duration = telemetry.wallclock() - started

    latencies.sort()
    completed = len(latencies)
    report: dict[str, Any] = {
        "dataset": dataset_name,
        "requests": requests,
        "pairs_per_request": pairs_per_request,
        "concurrency": max(1, concurrency),
        "seed": seed,
        "completed": completed,
        "errors": len(errors),
        "error_messages": errors[:10],
        "duration_seconds": duration,
        "requests_per_second": completed / duration if duration > 0 else 0.0,
        "client_latency_ms": {
            "p50": _percentile(latencies, 50) * 1000.0,
            "p99": _percentile(latencies, 99) * 1000.0,
            "mean": (sum(latencies) / completed * 1000.0) if completed else 0.0,
        },
    }
    try:
        report["server_metrics"] = _fetch_json(host, port, "GET", "/metrics")
    except Exception as exc:  # repro: noqa[GEN003] - metrics fetch is best-effort; the latency report stands alone
        report["server_metrics"] = {"error": str(exc)}
    return report
