"""Benchmark for Table 3 — the adapter grid (tokenizers x embedders).

Shape assertions: the hybrid tokenizer wins on most datasets (especially
the Dirty ones), and ALBERT is the most frequent best embedder — the two
findings the paper's Section 5.2 highlights.
"""

from __future__ import annotations

import numpy as np
from conftest import parallel_prefetch, save_and_print

from repro.experiments import ExperimentRunner, run_table3
from repro.experiments.table3 import table3_rows
from repro.transformers import EMBEDDER_NAMES


def test_table3(benchmark, output_dir, experiment_config):
    parallel_prefetch(experiment_config, 3)
    runner = ExperimentRunner(experiment_config)

    def compute():
        return {
            system: table3_rows(system, runner)
            for system in ("autosklearn", "autogluon", "h2o")
        }

    grids = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = run_table3(experiment_config)
    save_and_print(output_dir, "table3", text)

    hybrid_wins = 0
    cells = 0
    embedder_means: dict[str, list[float]] = {e: [] for e in EMBEDDER_NAMES}
    for rows in grids.values():
        for row in rows:
            attr_best = max(row[f"attr_{e}"] for e in EMBEDDER_NAMES)
            hybrid_best = max(row[f"hybrid_{e}"] for e in EMBEDDER_NAMES)
            if hybrid_best >= attr_best:
                hybrid_wins += 1
            for e in EMBEDDER_NAMES:
                embedder_means[e].append(
                    max(row[f"attr_{e}"], row[f"hybrid_{e}"])
                )
            cells += 1

    # Hybrid tokenization wins the majority of (system, dataset) cells.
    assert hybrid_wins / cells > 0.5
    # The five embedders land in a tight band: no architecture dominates
    # or degenerates, so the adapter's benefit is architecture-robust.
    # (Known deviation from the paper, see EXPERIMENTS.md: the paper finds
    # ALBERT the most frequent winner; with frozen random weights the
    # ranking is driven by token-hash granularity and RoBERTa/BERT edge
    # ahead instead.)
    means = {e: float(np.mean(v)) for e, v in embedder_means.items()}
    assert max(means.values()) - min(means.values()) < 15.0
    assert all(m > 30.0 for m in means.values())

    # On Dirty data specifically, hybrid must clearly beat attribute-wise
    # tokenization (the displaced values defeat attribute alignment).
    dirty_margin = []
    for rows in grids.values():
        for row in rows:
            if str(row["dataset"]).startswith("D-"):
                attr_mean = np.mean([row[f"attr_{e}"] for e in EMBEDDER_NAMES])
                hybrid_mean = np.mean(
                    [row[f"hybrid_{e}"] for e in EMBEDDER_NAMES]
                )
                dirty_margin.append(hybrid_mean - attr_mean)
    assert np.mean(dirty_margin) > 3.0
