"""Benchmark for Table 3 — the adapter grid (tokenizers x embedders).

The measurement lives in the registry spec ``table3`` (full tier); the
shape assertions stay here: the hybrid tokenizer wins on most datasets
(especially the Dirty ones), and the embedders land in a tight band —
the two findings the paper's Section 5.2 highlights.
"""

from __future__ import annotations

import numpy as np
from conftest import parallel_prefetch, save_and_print

from repro.transformers import EMBEDDER_NAMES


def test_table3(output_dir, experiment_config):
    parallel_prefetch(experiment_config, 3)
    from repro.bench import get_spec, load_suites, run_spec

    load_suites()
    result = run_spec(get_spec("table3"))
    grids = result.detail["grids"]
    save_and_print(output_dir, "table3", result.detail["text"])

    embedder_means: dict[str, list[float]] = {e: [] for e in EMBEDDER_NAMES}
    for rows in grids.values():
        for row in rows:
            for e in EMBEDDER_NAMES:
                embedder_means[e].append(
                    max(row[f"attr_{e}"], row[f"hybrid_{e}"])
                )

    # Hybrid tokenization wins the majority of (system, dataset) cells.
    assert result.metrics["hybrid_win_rate"] > 0.5
    # The five embedders land in a tight band: no architecture dominates
    # or degenerates, so the adapter's benefit is architecture-robust.
    # (Known deviation from the paper, see EXPERIMENTS.md: the paper finds
    # ALBERT the most frequent winner; with frozen random weights the
    # ranking is driven by token-hash granularity and RoBERTa/BERT edge
    # ahead instead.)
    means = {e: float(np.mean(v)) for e, v in embedder_means.items()}
    assert max(means.values()) - min(means.values()) < 15.0
    assert all(m > 30.0 for m in means.values())

    # On Dirty data specifically, hybrid must clearly beat attribute-wise
    # tokenization (the displaced values defeat attribute alignment).
    dirty_margin = []
    for rows in grids.values():
        for row in rows:
            if str(row["dataset"]).startswith("D-"):
                attr_mean = np.mean([row[f"attr_{e}"] for e in EMBEDDER_NAMES])
                hybrid_mean = np.mean(
                    [row[f"hybrid_{e}"] for e in EMBEDDER_NAMES]
                )
                dirty_margin.append(hybrid_mean - attr_mean)
    assert np.mean(dirty_margin) > 3.0
