"""Benchmark for Table 1 — benchmark statistics (registry + generation)."""

from __future__ import annotations

from conftest import save_and_print

from repro.experiments import run_table1


def test_table1_registry(benchmark, output_dir):
    """Render Table 1 from the registry (the paper's exact numbers)."""
    text = benchmark(run_table1)
    save_and_print(output_dir, "table1_registry", text)
    assert "28707" in text and "18.63" in text


def test_table1_generated(output_dir):
    """Generate every dataset at bench scale and measure its statistics
    through the registry spec (``repro-em bench --only table1``)."""
    from repro.bench import get_spec, load_suites, run_spec

    load_suites()
    result = run_spec(get_spec("table1"))
    save_and_print(output_dir, "table1_generated", result.detail["text"])
    # The generators must realise the registered match rates closely.
    assert result.metrics["max_match_rate_drift"] < 2.0
    assert result.metrics["datasets"] == len(result.detail["rows"]) == 12
