"""Benchmark for Table 1 — benchmark statistics (registry + generation)."""

from __future__ import annotations

from conftest import save_and_print

from repro.experiments import run_table1


def test_table1_registry(benchmark, output_dir):
    """Render Table 1 from the registry (the paper's exact numbers)."""
    text = benchmark(run_table1)
    save_and_print(output_dir, "table1_registry", text)
    assert "28707" in text and "18.63" in text


def test_table1_generated(benchmark, output_dir, experiment_config):
    """Generate every dataset at bench scale and measure its statistics."""
    text = benchmark.pedantic(
        lambda: run_table1(scale=experiment_config.scale, generate=True),
        rounds=1,
        iterations=1,
    )
    save_and_print(output_dir, "table1_generated", text)
    # The generators must realise the registered match rates closely.
    from repro.experiments.table1 import table1_rows

    nominal = {r["dataset"]: r["match_percent"] for r in table1_rows()}
    measured = table1_rows(scale=experiment_config.scale, generate=True)
    for row in measured:
        assert abs(row["match_percent"] - nominal[row["dataset"]]) < 2.0
