"""Benchmark for Table 2 — raw AutoML systems vs DeepMatcher.

The measurement lives in the registry spec ``table2`` (full tier); this
test runs it and asserts the shape findings (see DESIGN.md §4): raw
AutoML trails DeepMatcher on most datasets, the three raw systems land
in a similar average band, and AutoSklearn reports its full budget as
training time.
"""

from __future__ import annotations

import numpy as np
from conftest import parallel_prefetch, save_and_print


def test_table2(output_dir, experiment_config):
    parallel_prefetch(experiment_config, 2)
    from repro.bench import get_spec, load_suites, run_spec

    load_suites()
    result = run_spec(get_spec("table2"))
    rows = result.detail["rows"]
    save_and_print(output_dir, "table2", result.detail["text"])

    dm = np.array([r["deepmatcher_f1"] for r in rows])
    for system in ("autosklearn", "autogluon", "h2o"):
        raw = np.array([r[f"{system}_f1"] for r in rows])
        # DeepMatcher beats the raw system on a clear majority of datasets.
        assert (dm > raw).mean() >= 0.75, system
        # And by a wide margin on average.
        assert dm.mean() - raw.mean() > 15.0, system
        assert result.metrics[f"{system}_deepmatcher_margin"] > 15.0, system

    # AutoSklearn saturates its 1h budget on every dataset.
    hours = [r["autosklearn_hours"] for r in rows]
    assert all(abs(h - 1.0) < 1e-6 for h in hours)
