"""Benchmark for Table 2 — raw AutoML systems vs DeepMatcher.

Shape assertions (see DESIGN.md §4): raw AutoML trails DeepMatcher on
most datasets, the three raw systems land in a similar average band, and
AutoSklearn reports its full budget as training time.
"""

from __future__ import annotations

import numpy as np
from conftest import parallel_prefetch, save_and_print

from repro.experiments import ExperimentRunner, run_table2
from repro.experiments.table2 import table2_rows


def test_table2(benchmark, output_dir, experiment_config):
    parallel_prefetch(experiment_config, 2)
    runner = ExperimentRunner(experiment_config)
    rows = benchmark.pedantic(
        lambda: table2_rows(runner), rounds=1, iterations=1
    )
    text = run_table2(experiment_config)
    save_and_print(output_dir, "table2", text)

    dm = np.array([r["deepmatcher_f1"] for r in rows])
    for system in ("autosklearn", "autogluon", "h2o"):
        raw = np.array([r[f"{system}_f1"] for r in rows])
        # DeepMatcher beats the raw system on a clear majority of datasets.
        assert (dm > raw).mean() >= 0.75, system
        # And by a wide margin on average.
        assert dm.mean() - raw.mean() > 15.0, system

    # AutoSklearn saturates its 1h budget on every dataset.
    hours = [r["autosklearn_hours"] for r in rows]
    assert all(abs(h - 1.0) < 1e-6 for h in hours)
