"""Ablation benchmarks for the design choices DESIGN.md calls out.

The measurements live in the registry (:mod:`repro.bench.suites.ablations`,
``repro-em bench --list`` shows them); each test here runs one spec and
asserts the shape findings on its detail payload:

* combiner: mean vs concat;
* tokenizer: unstructured vs attr vs hybrid (incl. the Dirty case);
* search strategy: SMBO vs random search at equal budget;
* class balance: the future-work data augmentation on vs off;
* embedder source: dataset-local Word2Vec vs simulated pre-trained;
* matcher generations: Magellan vs DeepMatcher vs adapted AutoML.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_and_print

from repro.experiments.tables import render_table


@pytest.fixture(scope="module", autouse=True)
def _suites():
    from repro.bench import load_suites

    load_suites()


def _run(name: str):
    from repro.bench import get_spec, run_spec

    return run_spec(get_spec(name))


def _save(output_dir, name: str, title: str, columns, scores: dict) -> None:
    text = render_table(title, columns, [[k, v] for k, v in scores.items()])
    save_and_print(output_dir, name, text)


def test_ablation_combiner(output_dir):
    """Mean vs concat combiner on a structured dataset."""
    result = _run("ablation_combiner")
    scores = result.detail["scores"]
    _save(
        output_dir,
        "ablation_combiner",
        "Ablation: combiner (S-DA, attr+albert)",
        ["Combiner", "F1"],
        scores,
    )
    assert all(v > 40 for v in scores.values())
    assert result.metrics["f1_mean"] == scores["mean"]


def test_ablation_tokenizer_on_dirty(output_dir):
    """All three tokenizer modes on Dirty data: hybrid must lead attr."""
    scores = _run("ablation_tokenizer").detail["scores"]
    _save(
        output_dir,
        "ablation_tokenizer",
        "Ablation: tokenizer mode (D-DA, albert)",
        ["Tokenizer", "F1"],
        scores,
    )
    assert scores["hybrid"] >= scores["attr"] - 2.0


def test_ablation_search_strategy(output_dir):
    """SMBO (AutoSklearn) vs pure random search (H2O) at equal budget."""
    scores = _run("ablation_search").detail["scores"]
    _save(
        output_dir,
        "ablation_search",
        "Ablation: search strategy (S-AG, hybrid+albert)",
        ["Strategy", "F1"],
        scores,
    )
    assert all(np.isfinite(v) for v in scores.values())


def test_ablation_augmentation(output_dir):
    """Future-work item 1: balancing the training split by augmentation."""
    scores = _run("ablation_augmentation").detail["scores"]
    _save(
        output_dir,
        "ablation_augmentation",
        "Ablation: training-split augmentation (S-WA, hybrid+albert)",
        ["Training data", "F1"],
        scores,
    )
    assert all(np.isfinite(v) for v in scores.values())


def test_ablation_local_vs_pretrained_embedder(output_dir):
    """Future-work item 2: dataset-local Word2Vec embeddings vs ALBERT."""
    scores = _run("ablation_local_embedder").detail["scores"]
    _save(
        output_dir,
        "ablation_local_embedder",
        "Ablation: embedder source (S-DA, attr tokenizer)",
        ["Embedder", "F1"],
        scores,
    )
    assert all(v > 30 for v in scores.values())


def test_ablation_matcher_families(output_dir):
    """Three generations of EM systems on one dataset: Magellan-style
    features, DeepMatcher, and the adapted AutoML pipeline."""
    scores = _run("ablation_matchers").detail["scores"]
    _save(
        output_dir,
        "ablation_matchers",
        "Ablation: matcher generations (S-DA)",
        ["Matcher", "F1"],
        scores,
    )
    assert all(v > 40 for v in scores.values())
