"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one adapter/AutoML design decision on a compact
dataset subset:

* combiner: mean vs concat;
* tokenizer: unstructured vs attr vs hybrid (incl. the Dirty case);
* search strategy: SMBO vs random search at equal budget;
* class balance: the future-work data augmentation on vs off.
"""

from __future__ import annotations

import numpy as np
from conftest import save_and_print

from repro.adapter import EMAdapter
from repro.adapter.augmentation import balance_dataset
from repro.data import load_dataset, split_dataset
from repro.experiments.tables import render_table
from repro.matching import EMPipeline
from repro.ml.metrics import f1_score

_SCALE = 0.06
_MAX_MODELS = 6


def _pipeline_f1(splits, tokenizer, embedder, combiner="mean", automl="h2o"):
    pipeline = EMPipeline(
        adapter=EMAdapter(tokenizer, embedder, combiner),
        automl=automl,
        budget_hours=1.0,
        max_models=_MAX_MODELS,
    )
    pipeline.fit(splits.train, splits.valid)
    return 100.0 * pipeline.score(splits.test)


def test_ablation_combiner(benchmark, output_dir):
    """Mean vs concat combiner on a structured dataset."""
    splits = split_dataset(load_dataset("S-DA", scale=_SCALE))

    def run():
        return {
            "mean": _pipeline_f1(splits, "attr", "albert", "mean"),
            "concat": _pipeline_f1(splits, "attr", "albert", "concat"),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation: combiner (S-DA, attr+albert)",
        ["Combiner", "F1"],
        [[k, v] for k, v in scores.items()],
    )
    save_and_print(output_dir, "ablation_combiner", text)
    assert all(v > 40 for v in scores.values())


def test_ablation_tokenizer_on_dirty(benchmark, output_dir):
    """All three tokenizer modes on Dirty data: hybrid must lead attr."""
    splits = split_dataset(load_dataset("D-DA", scale=_SCALE))

    def run():
        return {
            mode: _pipeline_f1(splits, mode, "albert")
            for mode in ("unstructured", "attr", "hybrid")
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation: tokenizer mode (D-DA, albert)",
        ["Tokenizer", "F1"],
        [[k, v] for k, v in scores.items()],
    )
    save_and_print(output_dir, "ablation_tokenizer", text)
    assert scores["hybrid"] >= scores["attr"] - 2.0


def test_ablation_search_strategy(benchmark, output_dir):
    """SMBO (AutoSklearn) vs pure random search (H2O) at equal budget."""
    splits = split_dataset(load_dataset("S-AG", scale=_SCALE))

    def run():
        return {
            "smbo": _pipeline_f1(splits, "hybrid", "albert", automl="autosklearn"),
            "random": _pipeline_f1(splits, "hybrid", "albert", automl="h2o"),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation: search strategy (S-AG, hybrid+albert)",
        ["Strategy", "F1"],
        [[k, v] for k, v in scores.items()],
    )
    save_and_print(output_dir, "ablation_search", text)
    assert all(np.isfinite(v) for v in scores.values())


def test_ablation_augmentation(benchmark, output_dir):
    """Future-work item 1: balancing the training split by augmentation."""
    splits = split_dataset(load_dataset("S-WA", scale=_SCALE))
    adapter = EMAdapter("hybrid", "albert")

    def run():
        plain = EMPipeline(adapter=adapter, automl="h2o", max_models=_MAX_MODELS)
        plain.fit(splits.train, splits.valid)
        balanced_train = balance_dataset(
            splits.train, target_match_fraction=0.35,
            rng=np.random.default_rng(0),
        )
        balanced = EMPipeline(
            adapter=adapter, automl="h2o", max_models=_MAX_MODELS
        )
        balanced.fit(balanced_train, splits.valid)
        return {
            "imbalanced": 100.0 * f1_score(
                splits.test.labels, plain.predict(splits.test)
            ),
            "balanced": 100.0 * f1_score(
                splits.test.labels, balanced.predict(splits.test)
            ),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation: training-split augmentation (S-WA, hybrid+albert)",
        ["Training data", "F1"],
        [[k, v] for k, v in scores.items()],
    )
    save_and_print(output_dir, "ablation_augmentation", text)
    assert all(np.isfinite(v) for v in scores.values())


def test_ablation_local_vs_pretrained_embedder(benchmark, output_dir):
    """Future-work item 2: dataset-local Word2Vec embeddings vs ALBERT."""
    from repro.adapter.local_embedder import LocalWord2VecEmbedder
    from repro.data import load_dataset

    dataset = load_dataset("S-DA", scale=_SCALE)
    splits = split_dataset(dataset)

    def run():
        local = LocalWord2VecEmbedder.from_dataset(dataset, dim=48, epochs=2)
        return {
            "albert (simulated pre-trained)": _pipeline_f1(
                splits, "attr", "albert"
            ),
            "local word2vec": _f1_with_embedder(splits, local),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation: embedder source (S-DA, attr tokenizer)",
        ["Embedder", "F1"],
        [[k, v] for k, v in scores.items()],
    )
    save_and_print(output_dir, "ablation_local_embedder", text)
    assert all(v > 30 for v in scores.values())


def _f1_with_embedder(splits, embedder):
    pipeline = EMPipeline(
        adapter=EMAdapter("attr", embedder, "mean", cache=False),
        automl="h2o",
        budget_hours=1.0,
        max_models=_MAX_MODELS,
    )
    pipeline.fit(splits.train, splits.valid)
    return 100.0 * pipeline.score(splits.test)


def test_ablation_matcher_families(benchmark, output_dir):
    """Three generations of EM systems on one dataset: Magellan-style
    features, DeepMatcher, and the adapted AutoML pipeline."""
    from repro.matching import DeepMatcherHybrid, MagellanMatcher

    splits = split_dataset(load_dataset("S-DA", scale=_SCALE))

    def run():
        scores = {}
        magellan = MagellanMatcher(seed=0)
        magellan.fit(splits.train, splits.valid)
        scores["magellan features + GBM"] = 100.0 * f1_score(
            splits.test.labels, magellan.predict(splits.test)
        )
        deep = DeepMatcherHybrid(seed=0)
        deep.fit(splits.train, splits.valid)
        scores["deepmatcher (hybrid)"] = 100.0 * f1_score(
            splits.test.labels, deep.predict(splits.test)
        )
        scores["EM adapter + AutoML"] = _pipeline_f1(
            splits, "hybrid", "albert", automl="autosklearn"
        )
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation: matcher generations (S-DA)",
        ["Matcher", "F1"],
        [[k, v] for k, v in scores.items()],
    )
    save_and_print(output_dir, "ablation_matchers", text)
    assert all(v > 40 for v in scores.values())
