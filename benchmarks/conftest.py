"""Benchmark-suite configuration.

The benches regenerate the paper's tables through
:mod:`repro.experiments`; results land in ``benchmarks/output/`` and are
also echoed to the terminal. Experiment evaluations are cached under
``.repro_cache`` (keyed by scale / seed / calibration version), so a
repeated run re-renders instantly and an interrupted run resumes.

Scale and search effort are environment-controlled: ``REPRO_SCALE``
(default 0.08) and ``REPRO_MAX_MODELS`` (default 8). Full paper scale is
``REPRO_SCALE=1.0`` — expect hours.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def experiment_config():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig()


def save_and_print(output_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it for the bench log."""
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
