"""Benchmark-suite configuration.

The benches regenerate the paper's tables through
:mod:`repro.experiments`; results land in ``benchmarks/output/`` and are
also echoed to the terminal. Experiment evaluations are cached under
``.repro_cache`` (keyed by scale / seed / calibration version), so a
repeated run re-renders instantly and an interrupted run resumes.

Scale and search effort are environment-controlled: ``REPRO_SCALE``
(default 0.08) and ``REPRO_MAX_MODELS`` (default 8). Full paper scale is
``REPRO_SCALE=1.0`` — expect hours.

``REPRO_JOBS`` (default 1) fans each table's experiment grid out over
that many worker processes (:mod:`repro.parallel`) *before* the timed
serial pass, which then renders incrementally from the warmed disk
cache. Output is byte-identical either way; only the wall clock moves.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def parallel_jobs() -> int:
    """The ``REPRO_JOBS`` worker count (1 = serial, the default)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def parallel_prefetch(config, table: int) -> None:
    """Warm the experiment grid of ``table`` with ``REPRO_JOBS`` workers.

    A no-op at the default ``REPRO_JOBS=1``. With more jobs, every grid
    cell is computed in parallel and persisted to the shared disk cache,
    so the benchmark's timed serial pass replays cached results instead
    of recomputing them — same bytes, earlier finish.
    """
    jobs = parallel_jobs()
    if jobs > 1:
        from repro.parallel import GridSpec, ParallelRunner

        grid = GridSpec.for_table(table)
        ParallelRunner(config, jobs=jobs).run(grid)
        print(f"\n[prefetched {len(grid)} table-{table} cells with {jobs} jobs]")


try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    # Without the plugin there is no ``benchmark`` fixture and every
    # test requesting it dies as a collection *error*. This stand-in
    # turns those into clean skips with an actionable reason; the
    # registry-backed tests (no ``benchmark`` argument) still run.
    @pytest.fixture
    def benchmark():
        pytest.skip(
            "pytest-benchmark is not installed; pip install "
            "pytest-benchmark, or use the registry runner instead: "
            "PYTHONPATH=src repro-em bench"
        )


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def experiment_config():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig()


def save_and_print(output_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it for the bench log."""
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
