"""Component micro-benchmarks: the substrate pieces, timed in isolation.

The throughput measurements (dataset generation, embedding, the adapter
transform, GBM training, the full-repo lint, telemetry overhead) live
in the registry (:mod:`repro.bench.suites.components` and
``.analysis``) and are gated against committed baselines by
``repro-em bench``; the tests here run those specs and keep the
functional assertions. The remaining tests are classic pytest-benchmark
measurements of pieces not yet worth a baseline, plus perf *contracts*
(A must beat B) that need two timed legs in one process.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.data import load_dataset
from repro.matching import DeepMatcherHybrid
from repro.ml import RandomForestClassifier


@pytest.fixture(scope="module")
def small_dataset():
    return load_dataset("S-IA", scale=0.08)


@pytest.fixture(scope="module")
def _suites():
    from repro.bench import load_suites

    load_suites()


def _run(name: str):
    from repro.bench import get_spec, run_spec

    return run_spec(get_spec(name))


def test_dataset_generation(_suites):
    """Generate a ~1k-pair benchmark dataset from scratch (registry)."""
    result = _run("dataset_generation")
    assert result.metrics["records"] > 500
    assert result.metrics["records_per_second"] > 0


def test_embedding_throughput(_suites):
    """Embed 200 pair sequences with the ALBERT encoder (registry)."""
    result = _run("embedding_throughput")
    assert result.metrics["sequences"] == 200
    assert result.detail["output_dim"] > 0


def test_adapter_transform(_suites):
    """Full hybrid+albert adapter transform + cache replay (registry)."""
    result = _run("adapter_transform")
    assert result.detail["output_dim"] > 0
    # The cache-replay leg is exactly one seeding miss plus one hit.
    assert result.metrics["adapter.cache.memory.misses"] == 1
    assert result.metrics["adapter.cache.memory.hits"] == 1
    assert result.metrics["cache_replay_seconds"] < result.metrics[
        "uncached_seconds"
    ]


def test_gbm_training(_suites):
    """Train the default GBM on a 2k x 200 matrix (registry)."""
    result = _run("gbm_training")
    assert result.metrics["trees"] >= 1


def test_telemetry_disabled_overhead(_suites):
    """The no-op-when-disabled guarantee of ``repro.telemetry``.

    Every instrumented hot path (adapter transform, AutoML fit loops,
    the experiment runner) pays one disabled ``span``/``counter`` call
    per operation when telemetry is off. The registry spec times exactly
    that primitive; it must stay in the nanosecond regime — the
    instrumented paths therefore add well under 5% to any operation
    that does real work (a single pair embedding alone is ~100µs).
    """
    result = _run("telemetry_overhead")
    per_call_ns = result.metrics["ns_per_disabled_call"]
    assert per_call_ns < 5000, (
        f"disabled span+counter cost {per_call_ns:.0f}ns per call; "
        "expected well under 5µs"
    )


def test_tokenize_hoist_not_slower(small_dataset):
    """Perf contract of the PERF002 fix in ``EMAdapter.transform``.

    Tokenizing each pair once and transposing must not be slower than
    the per-position re-tokenization it replaced (it does 1/n_sequences
    of the tokenizer work); both variants are timed best-of-3 and the
    hoisted one gets a 1.2x tolerance for timer noise on a small input.
    """
    import time

    from repro.adapter.tokenizer import make_tokenizer

    tokenizer = make_tokenizer("hybrid")
    schema = small_dataset.schema
    n_sequences = tokenizer.sequence_count(schema)

    def per_position():
        return [
            [tokenizer.sequences(pair, schema)[position] for pair in small_dataset]
            for position in range(n_sequences)
        ]

    def hoisted():
        per_pair = [tokenizer.sequences(pair, schema) for pair in small_dataset]
        return [
            [sequences[position] for sequences in per_pair]
            for position in range(n_sequences)
        ]

    assert hoisted() == per_position()

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    naive_seconds = best_of(per_position)
    hoisted_seconds = best_of(hoisted)
    assert hoisted_seconds < 1.2 * naive_seconds, (
        f"hoisted tokenization ({hoisted_seconds:.4f}s) should not be "
        f"slower than per-position re-tokenization ({naive_seconds:.4f}s)"
    )


def test_forest_training(benchmark):
    """Train a 40-tree random forest on a 2k x 200 matrix."""
    rng = np.random.default_rng(1)
    X = rng.normal(size=(2000, 200))
    y = (X[:, 0] > 0).astype(np.int64)

    def fit():
        return RandomForestClassifier(
            n_estimators=40, max_depth=12, seed=0
        ).fit(X, y)

    benchmark.pedantic(fit, rounds=2, iterations=1)


def test_deepmatcher_featurization(benchmark, small_dataset):
    """DeepMatcher soft-alignment featurization of one dataset."""
    matcher = DeepMatcherHybrid()
    out = benchmark.pedantic(
        lambda: matcher.featurize(small_dataset), rounds=2, iterations=1
    )
    assert out.shape[0] == len(small_dataset)


def test_static_analysis_warm_cache(benchmark, tmp_path):
    """Warm-cache lint of src/ — and proof that it beats the cold run.

    The cache is seeded (and timed once, cold) into a throwaway
    directory; the benchmarked body then replays parses, summaries, and
    file-rule findings from it. The assertion at the end is the perf
    contract of the cache layer: a warm run must be strictly faster
    than the cold run that filled it.
    """
    import time

    from repro.analysis import AnalysisCache, analyze_project

    src_root = Path(__file__).resolve().parents[1] / "src"
    cache_dir = tmp_path / "analysis-cache"

    start = time.perf_counter()
    cold_findings = analyze_project([src_root], cache=AnalysisCache(cache_dir))
    cold_seconds = time.perf_counter() - start

    findings = benchmark.pedantic(
        lambda: analyze_project([src_root], cache=AnalysisCache(cache_dir)),
        rounds=3,
        iterations=1,
    )
    assert findings == cold_findings == []
    assert benchmark.stats.stats.min < cold_seconds, (
        f"warm lint ({benchmark.stats.stats.min:.3f}s) should beat the "
        f"cold run that seeded the cache ({cold_seconds:.3f}s)"
    )


def test_interprocedural_rules_warm_overhead(tmp_path):
    """The DET/SEAM/FORK dataflow families ride the cached summaries.

    Perf contract of the effect layer: a warm full-rule-pack lint of
    src/ must stay under 2x a warm lint with only the legacy
    (pre-dataflow) rules. Both packs are timed best-of-3 against their
    own pre-seeded cache directory.
    """
    import time

    from repro.analysis import AnalysisCache, all_rules, analyze_project

    src_root = Path(__file__).resolve().parents[1] / "src"
    dataflow_prefixes = ("DET", "SEAM", "FORK", "PERF")
    legacy = [r for r in all_rules() if not r.id.startswith(dataflow_prefixes)]
    full = all_rules()
    assert len(full) > len(legacy)

    def warm_seconds(rules, cache_dir):
        analyze_project([src_root], rules=rules, cache=AnalysisCache(cache_dir))
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            analyze_project(
                [src_root], rules=rules, cache=AnalysisCache(cache_dir)
            )
            best = min(best, time.perf_counter() - start)
        return best

    legacy_warm = warm_seconds(legacy, tmp_path / "legacy-cache")
    full_warm = warm_seconds(full, tmp_path / "full-cache")
    assert full_warm < 2 * legacy_warm, (
        f"warm full-pack lint ({full_warm:.3f}s) must stay under 2x the "
        f"warm legacy-rules lint ({legacy_warm:.3f}s)"
    )


def test_telemetry_enabled_trace_capture(benchmark):
    """Span capture cost with telemetry enabled (1k-node trace)."""
    from repro import telemetry

    def record_trace():
        with telemetry.recording() as recorder:
            with telemetry.span("root"):
                for index in range(1000):
                    with telemetry.span("leaf", index=index):
                        pass
        return recorder

    recorder = benchmark.pedantic(record_trace, rounds=3, iterations=1)
    assert len(recorder.spans) == 1001
    assert telemetry.active() is None, "recording() must restore 'off'"


def test_import_graph_build(benchmark):
    """Whole-program import-graph construction over all of src/."""
    from repro.analysis.core import Project

    src_root = Path(__file__).resolve().parents[1] / "src"

    def build():
        return Project.load([src_root]).import_graph()

    graph = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(graph.modules) > 50
    assert graph.cycles() == []


def test_parallel_executor_speedup(benchmark, tmp_path, monkeypatch):
    """A two-worker grid run beats the serial run on a cold cache.

    The grid (Table 2 on two datasets at small scale) is embarrassingly
    parallel, so with two real cores the pool should land well under the
    serial wall clock; the outputs are asserted identical either way.
    Skipped on single-core machines, where the pool can only add
    process-management overhead.
    """
    import os as _os

    cores = _os.cpu_count() or 1
    if cores < 2:
        pytest.skip(f"needs >= 2 cores for a speedup, have {cores}")

    import time

    from repro.experiments import ExperimentConfig
    from repro.parallel import GridSpec, ParallelRunner

    config = ExperimentConfig(scale=0.02, max_models=2)
    grid = GridSpec.for_table(2, datasets=("S-BR", "S-FZ"))

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    start = time.perf_counter()
    serial = ParallelRunner(config, jobs=1).run(grid)
    serial_seconds = time.perf_counter() - start

    def parallel_run():
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        return ParallelRunner(config, jobs=2).run(grid)

    results = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_seconds = benchmark.stats.stats.min

    def stable(cell_results):
        return [
            {k: v for k, v in r.record.items() if k != "wall_seconds"}
            for r in cell_results
        ]

    assert stable(results) == stable(serial)
    assert parallel_seconds < serial_seconds, (
        f"jobs=2 took {parallel_seconds:.1f}s vs {serial_seconds:.1f}s serial"
    )


def test_faults_checkpoint_disabled_overhead(benchmark):
    """The no-op-when-disabled guarantee of ``repro.faults``.

    Every hardened I/O seam pays one disabled ``checkpoint`` call per
    operation in production (no plan installed — the only production
    state). The call is one module attribute read plus an ``is None``
    check; this bench asserts it stays under 1µs so the crash-safety
    instrumentation is free on the hot paths.
    """
    from repro import faults

    assert faults.active() is None, "fault injection must be off by default"
    calls = 10_000

    def disabled_checkpoints():
        for _ in range(calls):
            faults.checkpoint("bench.noop")

    benchmark.pedantic(disabled_checkpoints, rounds=3, iterations=1)
    per_call = benchmark.stats.stats.min / calls
    assert per_call < 1e-6, (
        f"disabled checkpoint cost {per_call * 1e9:.0f}ns per call; "
        "expected under 1µs"
    )
