"""Benchmark the ``repro.analysis`` engine: cold vs warm full-repo lint.

The measurement itself lives in the registry
(:mod:`repro.bench.suites.analysis`, spec name ``analysis``); refresh
the committed snapshot at the repo root with::

    PYTHONPATH=src repro-em bench --only analysis --update-baselines

This pytest module exercises the same harness into a throwaway
directory and asserts the cache's perf contract (warm < cold), plus
that the committed ``BENCH_analysis.json`` stays schema-valid and keeps
the legacy detail keys its pre-registry readers expect.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_analysis.json"


def test_analysis_engine_cold_vs_warm(tmp_path):
    """The payload is well-formed and the warm leg beats the cold leg."""
    from repro.bench.suites.analysis import run_analysis_benchmark

    payload = run_analysis_benchmark(tmp_path / "cache", warm_rounds=2)
    assert payload["findings"]["cold"] == payload["findings"]["warm"] == 0
    assert payload["cold"]["cache_hits"] == 0
    assert payload["warm"]["cache_misses"] == 0
    assert payload["warm"]["cache_hits"] == payload["modules"]
    assert payload["warm"]["seconds"] < payload["cold"]["seconds"]
    assert payload["cost_pass"]["hotspots"] > 0
    assert payload["cost_pass"]["warm_seconds"] < 2.0  # propagation only


def test_analysis_spec_registered():
    """The registry owns the benchmark: quick tier, gated cache metrics."""
    from repro.bench import get_spec, load_suites

    load_suites()
    spec = get_spec("analysis")
    assert spec.tier == "quick"
    gated = {p.name for p in spec.metrics if p.gate}
    assert {"warm_over_cold", "findings", "warm_cache_misses"} <= gated


def test_committed_snapshot_schema():
    """``BENCH_analysis.json`` at the repo root is a schema-valid v2
    envelope whose detail keeps the version-1 payload keys (numbers are
    machine-dependent and not compared)."""
    from repro.bench import SCHEMA_VERSION, validate_payload

    payload = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    validate_payload(payload)
    assert payload["schema_version"] == SCHEMA_VERSION == 2
    assert payload["name"] == "analysis"

    detail = payload["detail"]
    for key in (
        "salt", "modules", "rules", "findings", "cold", "warm", "cost_pass",
    ):
        assert key in detail, key
    assert {"cold_seconds", "warm_seconds", "hotspots"} <= detail[
        "cost_pass"
    ].keys()
    for leg in ("cold", "warm"):
        assert {"seconds", "cache_hits", "cache_misses"} <= detail[leg].keys()
