"""Benchmark the ``repro.analysis`` engine: cold vs warm full-repo lint.

Runs the complete rule pack (including the inter-procedural
``DET``/``SEAM``/``FORK`` families) over ``src/`` twice — once against a
fresh cache directory (cold: every module parsed, summarized, and
checked) and then warm (parses, summaries, and file-rule findings
replayed from the salted cache) — and records wall times, cache
hit/miss counters, and module/finding counts.

Run it directly to refresh the committed snapshot at the repo root::

    PYTHONPATH=src python benchmarks/bench_analysis.py   # -> BENCH_analysis.json

or through pytest, which exercises the same harness into a throwaway
directory and asserts the cache's perf contract (warm < cold).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_analysis.json"


def run_analysis_benchmark(cache_dir: Path, warm_rounds: int = 3) -> dict:
    """Time one cold and ``warm_rounds`` warm full-repo analysis runs.

    Returns the ``BENCH_analysis.json`` payload. ``cache_dir`` must not
    hold a previous cache — the first run is the cold leg by definition.
    """
    from repro.analysis import (
        AnalysisCache,
        Project,
        all_rules,
        analysis_salt,
        analyze_project,
    )

    salt = analysis_salt(SRC_ROOT)

    cold_cache = AnalysisCache(cache_dir, salt=salt)
    start = time.perf_counter()
    cold_findings = analyze_project([SRC_ROOT], cache=cold_cache)
    cold_seconds = time.perf_counter() - start

    warm_seconds = []
    warm_hits = warm_misses = 0
    warm_findings: list = []
    for _ in range(warm_rounds):
        warm_cache = AnalysisCache(cache_dir, salt=salt)
        start = time.perf_counter()
        warm_findings = analyze_project([SRC_ROOT], cache=warm_cache)
        warm_seconds.append(time.perf_counter() - start)
        warm_hits, warm_misses = warm_cache.hits, warm_cache.misses

    # Cost fixpoint in isolation: cold (fresh project, summaries built
    # from source) vs warm (summaries replayed from the cache above,
    # only the multiplicity propagation itself re-runs).
    from repro.analysis.cost import cost_analysis

    start = time.perf_counter()
    cold_project = Project.load([SRC_ROOT])
    cost_analysis(cold_project)
    cost_cold_seconds = time.perf_counter() - start

    cost_warm_seconds = []
    for _ in range(warm_rounds):
        warm_project = Project.load(
            [SRC_ROOT], cache=AnalysisCache(cache_dir, salt=salt)
        )
        start = time.perf_counter()
        cost_analysis(warm_project)
        cost_warm_seconds.append(time.perf_counter() - start)

    modules = len(cold_project.modules)
    return {
        "version": 1,
        "benchmark": "repro.analysis full-repo lint of src/",
        "salt": salt,
        "modules": modules,
        "rules": len(all_rules()),
        "findings": {
            "cold": len(cold_findings),
            "warm": len(warm_findings),
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "cache_hits": cold_cache.hits,
            "cache_misses": cold_cache.misses,
        },
        "warm": {
            "seconds": round(min(warm_seconds), 4),
            "rounds": warm_rounds,
            "cache_hits": warm_hits,
            "cache_misses": warm_misses,
        },
        "warm_over_cold": round(min(warm_seconds) / cold_seconds, 4),
        "cost_pass": {
            "cold_seconds": round(cost_cold_seconds, 4),
            "warm_seconds": round(min(cost_warm_seconds), 4),
            "hotspots": len(cost_analysis(cold_project).hotspots()),
        },
    }


def test_analysis_engine_cold_vs_warm(tmp_path):
    """The payload is well-formed and the warm leg beats the cold leg."""
    payload = run_analysis_benchmark(tmp_path / "cache", warm_rounds=2)
    assert payload["findings"]["cold"] == payload["findings"]["warm"] == 0
    assert payload["cold"]["cache_hits"] == 0
    assert payload["warm"]["cache_misses"] == 0
    assert payload["warm"]["cache_hits"] == payload["modules"]
    assert payload["warm"]["seconds"] < payload["cold"]["seconds"]
    assert payload["cost_pass"]["hotspots"] > 0
    assert payload["cost_pass"]["warm_seconds"] < 2.0  # propagation only


def test_committed_snapshot_schema():
    """``BENCH_analysis.json`` at the repo root stays in the shape this
    harness writes (numbers are machine-dependent and not compared)."""
    payload = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    for key in (
        "salt", "modules", "rules", "findings", "cold", "warm", "cost_pass",
    ):
        assert key in payload, key
    assert {"cold_seconds", "warm_seconds", "hotspots"} <= payload[
        "cost_pass"
    ].keys()
    for leg in ("cold", "warm"):
        assert {"seconds", "cache_hits", "cache_misses"} <= payload[leg].keys()


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    output = Path(args[0]) if args else SNAPSHOT_PATH
    with tempfile.TemporaryDirectory(prefix="repro-bench-analysis-") as tmp:
        payload = run_analysis_benchmark(Path(tmp) / "cache")
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
