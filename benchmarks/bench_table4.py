"""Benchmark for Table 4 — adapter impact deltas.

The measurement lives in the registry spec ``table4`` (full tier).
Shape assertion: the EM adapter lifts every AutoML system's average F1
by a large positive margin (the paper reports +24.96, +28.02 and +23.6
for AutoSklearn, AutoGluon and H2OAutoML).
"""

from __future__ import annotations

from conftest import parallel_prefetch, save_and_print


def test_table4(output_dir, experiment_config):
    parallel_prefetch(experiment_config, 4)
    from repro.bench import get_spec, load_suites, run_spec

    load_suites()
    result = run_spec(get_spec("table4"))
    rows = result.detail["rows"]
    save_and_print(output_dir, "table4", result.detail["text"])

    for system in ("autosklearn", "autogluon", "h2o"):
        delta = result.metrics[f"{system}_adapter_delta"]
        # Large positive average improvement for every system.
        assert delta > 10.0, (system, delta)

    # The adapter improves the clear majority of (dataset, system) cells.
    assert result.metrics["improved_cell_rate"] > 0.8
    assert result.metrics["datasets"] == len(rows)
