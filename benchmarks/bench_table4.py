"""Benchmark for Table 4 — adapter impact deltas.

Shape assertion: the EM adapter lifts every AutoML system's average F1 by
a large positive margin (the paper reports +24.96, +28.02 and +23.6 for
AutoSklearn, AutoGluon and H2OAutoML).
"""

from __future__ import annotations

from conftest import parallel_prefetch, save_and_print

from repro.experiments import ExperimentRunner, run_table4
from repro.experiments.table4 import average_deltas, table4_rows


def test_table4(benchmark, output_dir, experiment_config):
    parallel_prefetch(experiment_config, 4)
    runner = ExperimentRunner(experiment_config)
    rows = benchmark.pedantic(
        lambda: table4_rows(runner), rounds=1, iterations=1
    )
    text = run_table4(experiment_config)
    save_and_print(output_dir, "table4", text)

    deltas = average_deltas(rows)
    for system, delta in deltas.items():
        # Large positive average improvement for every system.
        assert delta > 10.0, (system, delta)

    # The adapter improves the clear majority of (dataset, system) cells.
    improved = sum(
        1
        for row in rows
        for system in ("autosklearn", "autogluon", "h2o")
        if row[f"{system}_delta"] > 0
    )
    total = len(rows) * 3
    assert improved / total > 0.8
