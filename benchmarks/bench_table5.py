"""Benchmark for Table 5 — adapted AutoML vs DeepMatcher under budgets.

The measurement lives in the registry spec ``table5`` (full tier).
Shape assertions: with the best adapter (hybrid + ALBERT), AutoML is
comparable to or better than DeepMatcher on most datasets within a
small tolerance, and a 6h budget never hurts relative to 1h on average.
"""

from __future__ import annotations

from conftest import parallel_prefetch, save_and_print

_SYSTEMS = ("autosklearn", "autogluon", "h2o")
_TOLERANCE = 7.5  # F1 points; the paper uses 2.0 at full scale.


def test_table5(output_dir, experiment_config):
    parallel_prefetch(experiment_config, 5)
    from repro.bench import get_spec, load_suites, run_spec

    load_suites()
    result = run_spec(get_spec("table5"))
    rows = result.detail["rows"]
    save_and_print(output_dir, "table5", result.detail["text"])

    comparable = 0
    for row in rows:
        best_1h = max(row[f"{system}_1h"] for system in _SYSTEMS)
        if best_1h >= row["deepmatcher_f1"] - _TOLERANCE:
            comparable += 1
    # Adapted AutoML is comparable-or-better on a clear majority of the
    # benchmark (paper: 9/12 at 1h, 11/12 at 6h).
    assert comparable >= len(rows) * 0.6

    # More budget never hurts on average.
    assert (
        result.metrics["best_6h_f1_mean"]
        >= result.metrics["best_1h_f1_mean"] - 1.0
    )
