"""Benchmark for Table 5 — adapted AutoML vs DeepMatcher under budgets.

Shape assertions: with the best adapter (hybrid + ALBERT), AutoML is
comparable to or better than DeepMatcher on most datasets within a small
tolerance, and a 6h budget never hurts relative to 1h on average.
"""

from __future__ import annotations

import numpy as np
from conftest import parallel_prefetch, save_and_print

from repro.experiments import ExperimentRunner, run_table5
from repro.experiments.table5 import table5_rows

_SYSTEMS = ("autosklearn", "autogluon", "h2o")
_TOLERANCE = 7.5  # F1 points; the paper uses 2.0 at full scale.


def test_table5(benchmark, output_dir, experiment_config):
    parallel_prefetch(experiment_config, 5)
    runner = ExperimentRunner(experiment_config)
    rows = benchmark.pedantic(
        lambda: table5_rows(runner), rounds=1, iterations=1
    )
    text = run_table5(experiment_config)
    save_and_print(output_dir, "table5", text)

    comparable = 0
    for row in rows:
        best_1h = max(row[f"{system}_1h"] for system in _SYSTEMS)
        if best_1h >= row["deepmatcher_f1"] - _TOLERANCE:
            comparable += 1
    # Adapted AutoML is comparable-or-better on a clear majority of the
    # benchmark (paper: 9/12 at 1h, 11/12 at 6h).
    assert comparable >= len(rows) * 0.6

    mean_1h = np.mean(
        [max(row[f"{s}_1h"] for s in _SYSTEMS) for row in rows]
    )
    mean_6h = np.mean(
        [max(row[f"{s}_6h"] for s in _SYSTEMS) for row in rows]
    )
    # More budget never hurts on average.
    assert mean_6h >= mean_1h - 1.0
